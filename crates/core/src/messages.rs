//! Wire format of the worker → collector subtotal messages
//! (paper Section 2.2).
//!
//! Each message carries the worker's *cumulative* sums so far: the two
//! matrices `[Σζ_ij]`, `[Σζ²_ij]`, the sample volume `l_m`, and the
//! worker's accumulated compute time (used for the mean-time-per-
//! realization statistic in `func_log.dat`). Because the sums are
//! cumulative, the collector keeps only the *latest* message per worker
//! and replaces rather than adds — making message loss-free retrying
//! idempotent.

use parmonc_mpi::bytes::Bytes;
use parmonc_mpi::envelope::{PayloadReader, PayloadWriter};
use parmonc_mpi::pool::BufferPool;
use parmonc_mpi::{MpiError, Tag};
use parmonc_stats::MatrixAccumulator;

use crate::error::ParmoncError;

/// Tag of an intermediate subtotal message.
pub const TAG_SUBTOTAL: Tag = Tag(1);
/// Tag of a worker's final subtotal message (its quota is done or the
/// deadline hit).
pub const TAG_FINAL: Tag = Tag(2);
/// Tag of the collector's stop broadcast (error-controlled stopping:
/// the target `eps_max` has been reached).
pub const TAG_STOP: Tag = Tag(3);
/// Tag of a worker's liveness heartbeat (empty payload). Sent between
/// realizations when no subtotal has left the worker recently, so the
/// collector can distinguish "slow" from "dead".
pub const TAG_HEARTBEAT: Tag = Tag(4);
/// Tag of the collector's quota extension (a single `u64` payload:
/// extra realizations). Sent to survivors when a dead worker's
/// remaining budget is reassigned; the survivor simulates the extra
/// realizations on its *own* fresh leapfrog streams.
pub const TAG_EXTEND: Tag = Tag(5);
/// Tag of a relay's coalesced upstream batch (tree collection): the
/// latest raw subtotal payload per source rank in the relay's subtree,
/// concatenated as [`BatchEntry`] records. The payloads are forwarded
/// byte-for-byte — relays never pre-merge floating-point state — so
/// the root's rank-ordered fold stays bit-identical to the star shape.
pub const TAG_BATCH: Tag = Tag(6);
/// Tag of the collector's reparent order (a single `u64` payload: the
/// new parent rank). Sent to the children of a relay that was declared
/// lost; they degrade to reporting straight to the named rank
/// (in practice the collector itself). Honored only from rank 0.
pub const TAG_REPARENT: Tag = Tag(7);

/// A subtotal snapshot from one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Subtotal {
    /// Cumulative accumulator state (sums, sums of squares, volume).
    pub acc: MatrixAccumulator,
    /// Total compute seconds the worker has spent simulating.
    pub compute_seconds: f64,
}

impl Subtotal {
    /// Exact encoded size for a `nrow × ncol` accumulator: the 32-byte
    /// header (`nrow`, `ncol`, `count`, `compute_seconds`) plus two
    /// length-prefixed `f64` matrices.
    #[must_use]
    pub fn encoded_len(nrow: usize, ncol: usize) -> usize {
        48 + 16 * (nrow * ncol)
    }

    /// Serializes into a message payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        Self::encode_state_pooled(&self.acc, self.compute_seconds, &BufferPool::new(1))
    }

    /// Serializes borrowed accumulator state into a recycled buffer from `pool`
    /// (the allocation-free steady state of the strictest exchange
    /// mode): takes a retired send buffer, encodes, and freezes without
    /// copying. The receiver recycles the payload back after decoding.
    #[must_use]
    pub fn encode_state_pooled(
        acc: &MatrixAccumulator,
        compute_seconds: f64,
        pool: &BufferPool,
    ) -> Bytes {
        let (nrow, ncol) = acc.shape();
        let w = PayloadWriter::from_buffer(pool.take(Self::encoded_len(nrow, ncol)));
        Self::encode_into_writer(acc, compute_seconds, w)
    }

    fn encode_into_writer(
        acc: &MatrixAccumulator,
        compute_seconds: f64,
        mut w: PayloadWriter,
    ) -> Bytes {
        let (nrow, ncol) = acc.shape();
        w.put_u64(nrow as u64);
        w.put_u64(ncol as u64);
        w.put_u64(acc.count());
        w.put_f64(compute_seconds);
        w.put_f64_slice(acc.sums());
        w.put_f64_slice(acc.sums_sq());
        w.finish()
    }

    /// Deserializes from a message payload.
    ///
    /// # Errors
    ///
    /// Returns [`ParmoncError::Mpi`] on a truncated payload or
    /// [`ParmoncError::Stats`] if the decoded shape is inconsistent.
    pub fn decode(payload: Bytes) -> Result<Self, ParmoncError> {
        let mut r = PayloadReader::new(payload);
        let nrow = r.get_u64()? as usize;
        let ncol = r.get_u64()? as usize;
        let count = r.get_u64()?;
        let compute_seconds = r.get_f64()?;
        let sums = r.get_f64_vec()?;
        let sums_sq = r.get_f64_vec()?;
        if r.remaining() != 0 {
            return Err(ParmoncError::Mpi(MpiError::MalformedPayload {
                what: "trailing bytes after subtotal",
            }));
        }
        let acc = MatrixAccumulator::from_parts(nrow, ncol, sums, sums_sq, count)?;
        Ok(Self {
            acc,
            compute_seconds,
        })
    }

    /// Deserializes into `slot` in place. When `slot` already holds a
    /// subtotal of the same shape, its matrices are overwritten without
    /// allocating — the collector's steady state, where every worker
    /// re-sends the same shape each pass. Otherwise this falls back to
    /// a fresh [`Subtotal::decode`].
    ///
    /// # Errors
    ///
    /// Same as [`Subtotal::decode`]. If the in-place path fails midway
    /// the slot's contents are unspecified; callers treat decode errors
    /// as fatal for the stream.
    pub fn decode_into(payload: &Bytes, slot: &mut Option<Subtotal>) -> Result<(), ParmoncError> {
        let mut r = PayloadReader::new(payload.clone());
        let nrow = r.get_u64()? as usize;
        let ncol = r.get_u64()? as usize;
        let count = r.get_u64()?;
        let compute_seconds = r.get_f64()?;
        match slot {
            Some(sub) if sub.acc.shape() == (nrow, ncol) => {
                let (sums, sums_sq, cnt) = sub.acc.raw_parts_mut();
                r.get_f64_slice_into(sums)?;
                r.get_f64_slice_into(sums_sq)?;
                if r.remaining() != 0 {
                    return Err(ParmoncError::Mpi(MpiError::MalformedPayload {
                        what: "trailing bytes after subtotal",
                    }));
                }
                *cnt = count;
                sub.compute_seconds = compute_seconds;
                Ok(())
            }
            _ => {
                *slot = Some(Self::decode(payload.clone())?);
                Ok(())
            }
        }
    }
}

/// One record of a [`TAG_BATCH`] frame: the latest raw subtotal
/// payload a relay holds for one source rank, plus whether that rank's
/// final subtotal has been seen. The payload bytes are exactly what
/// the source rank sent — a relay forwards, it never re-encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// The rank whose cumulative subtotal this is.
    pub rank: usize,
    /// Whether the source rank has sent its [`TAG_FINAL`] message.
    pub is_final: bool,
    /// The raw [`Subtotal`] payload, byte-for-byte as sent.
    pub payload: Bytes,
}

/// Encodes a [`TAG_BATCH`] payload:
/// `[count u64]` then per entry `[rank u64][flags u64][len u64][payload]`
/// (flags bit 0 = final). Entries are written in the iteration order
/// given — callers pass ascending rank order so batches are
/// deterministic for a given relay state.
#[must_use]
pub fn encode_batch<'a>(entries: impl IntoIterator<Item = (usize, bool, &'a [u8])>) -> Bytes {
    let entries: Vec<(usize, bool, &[u8])> = entries.into_iter().collect();
    let total: usize = 8 + entries.iter().map(|(_, _, p)| 24 + p.len()).sum::<usize>();
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (rank, is_final, payload) in entries {
        buf.extend_from_slice(&(rank as u64).to_le_bytes());
        buf.extend_from_slice(&u64::from(is_final).to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
    }
    Bytes::from(buf)
}

/// Decodes a [`TAG_BATCH`] payload. Entry payloads are zero-copy
/// slices sharing the frame's buffer — do *not* recycle the frame into
/// a [`BufferPool`] while entries are alive.
///
/// # Errors
///
/// [`ParmoncError::Mpi`] on a truncated or trailing-byte payload.
pub fn decode_batch(payload: &Bytes) -> Result<Vec<BatchEntry>, ParmoncError> {
    let malformed = |what| ParmoncError::Mpi(MpiError::MalformedPayload { what });
    let read_u64 = |buf: &Bytes, at: usize| -> Result<u64, ParmoncError> {
        let end = at
            .checked_add(8)
            .ok_or(malformed("batch offset overflow"))?;
        if end > buf.len() {
            return Err(malformed("truncated batch header"));
        }
        Ok(u64::from_le_bytes(
            buf[at..end].try_into().expect("8 bytes"),
        ))
    };
    let count = read_u64(payload, 0)?;
    let mut entries = Vec::with_capacity(usize::try_from(count).unwrap_or(0).min(4096));
    let mut at = 8usize;
    for _ in 0..count {
        let rank = usize::try_from(read_u64(payload, at)?)
            .map_err(|_| malformed("batch entry rank does not fit"))?;
        let flags = read_u64(payload, at + 8)?;
        let len = usize::try_from(read_u64(payload, at + 16)?)
            .map_err(|_| malformed("batch entry length does not fit"))?;
        let start = at + 24;
        let end = start
            .checked_add(len)
            .ok_or(malformed("batch entry length overflow"))?;
        if end > payload.len() {
            return Err(malformed("truncated batch entry"));
        }
        entries.push(BatchEntry {
            rank,
            is_final: flags & 1 != 0,
            payload: payload.slice(start..end),
        });
        at = end;
    }
    if at != payload.len() {
        return Err(malformed("trailing bytes after batch"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Subtotal {
        let mut acc = MatrixAccumulator::new(3, 2).unwrap();
        acc.add(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        acc.add(&[-1.0, 0.5, 0.0, 2.0, 8.0, 1.0]).unwrap();
        Subtotal {
            acc,
            compute_seconds: 12.75,
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let decoded = Subtotal::decode(s.encode()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn borrowed_and_pooled_encodes_are_bitwise_identical() {
        let s = sample();
        let owned = s.encode();
        let pool = BufferPool::default();
        let pooled = Subtotal::encode_state_pooled(&s.acc, s.compute_seconds, &pool);
        assert_eq!(owned, pooled);
        // Round-trip recycling: decode, reclaim, and the next encode
        // reuses the allocation.
        assert!(pool.recycle(pooled));
        let again = Subtotal::encode_state_pooled(&s.acc, s.compute_seconds, &pool);
        assert_eq!(owned, again);
    }

    #[test]
    fn encoded_len_is_exact() {
        let s = sample();
        let (nrow, ncol) = s.acc.shape();
        assert_eq!(s.encode().len(), Subtotal::encoded_len(nrow, ncol));
    }

    #[test]
    fn decode_into_reuses_matching_slot() {
        let s = sample();
        let payload = s.encode();
        // Same-shape slot: overwritten in place.
        let mut acc0 = MatrixAccumulator::new(3, 2).unwrap();
        acc0.add(&[9.0; 6]).unwrap();
        let mut slot = Some(Subtotal {
            acc: acc0,
            compute_seconds: 0.0,
        });
        let sums_ptr = slot.as_ref().unwrap().acc.sums().as_ptr();
        Subtotal::decode_into(&payload, &mut slot).unwrap();
        assert_eq!(slot.as_ref().unwrap(), &s);
        assert_eq!(
            slot.as_ref().unwrap().acc.sums().as_ptr(),
            sums_ptr,
            "same-shape decode must not reallocate"
        );
        // Empty slot: falls back to a fresh decode.
        let mut empty = None;
        Subtotal::decode_into(&payload, &mut empty).unwrap();
        assert_eq!(empty.as_ref().unwrap(), &s);
        // Shape change: replaced, not corrupted.
        let mut other = Some(Subtotal {
            acc: MatrixAccumulator::new(2, 2).unwrap(),
            compute_seconds: 0.0,
        });
        Subtotal::decode_into(&payload, &mut other).unwrap();
        assert_eq!(other.as_ref().unwrap(), &s);
    }

    #[test]
    fn truncated_payload_errors() {
        let s = sample();
        let full = s.encode();
        for cut in [0, 8, 20, full.len() - 1] {
            let err = Subtotal::decode(full.slice(..cut));
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let s = sample();
        let mut bytes = s.encode().to_vec();
        bytes.push(0);
        assert!(Subtotal::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        // Claim 2x2 but provide 6 sums.
        let mut w = PayloadWriter::new();
        w.put_u64(2);
        w.put_u64(2);
        w.put_u64(1);
        w.put_f64(0.0);
        w.put_f64_slice(&[0.0; 6]);
        w.put_f64_slice(&[0.0; 6]);
        assert!(Subtotal::decode(w.finish()).is_err());
    }

    #[test]
    fn batch_round_trips_and_preserves_payload_bytes() {
        let s = sample();
        let inner = s.encode();
        let batch = encode_batch([
            (3usize, false, inner.as_slice()),
            (7usize, true, inner.as_slice()),
        ]);
        let entries = decode_batch(&batch).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!((entries[0].rank, entries[0].is_final), (3, false));
        assert_eq!((entries[1].rank, entries[1].is_final), (7, true));
        for e in &entries {
            assert_eq!(
                e.payload.as_slice(),
                inner.as_slice(),
                "bytes must survive verbatim"
            );
            assert_eq!(Subtotal::decode(e.payload.clone()).unwrap(), s);
        }
        // Empty batches are legal (a relay flushing with nothing new).
        assert!(decode_batch(&encode_batch([])).unwrap().is_empty());
    }

    #[test]
    fn batch_rejects_truncation_and_trailing_bytes() {
        let s = sample();
        let inner = s.encode();
        let batch = encode_batch([(1usize, true, inner.as_slice())]);
        for cut in [0, 7, 8, 20, batch.len() - 1] {
            assert!(decode_batch(&batch.slice(..cut)).is_err(), "cut at {cut}");
        }
        let mut extended = batch.to_vec();
        extended.push(0);
        assert!(decode_batch(&Bytes::from(extended)).is_err());
    }

    #[test]
    fn paper_message_size_order() {
        // 1000x2 matrices: the performance test's periodic payload.
        let acc = MatrixAccumulator::new(1000, 2).unwrap();
        let payload = Subtotal {
            acc,
            compute_seconds: 0.0,
        }
        .encode();
        // Two 2000-entry f64 matrices ≈ 32 KB plus framing.
        assert!(payload.len() >= 32_000 && payload.len() <= 33_000);
    }
}
