//! The one-stop import for PARMONC users.
//!
//! Everything a typical simulation program touches — the builder entry
//! point, the realization trait and its closure adapter, the report and
//! error types, and the run-shaping selectors ([`Exchange`],
//! [`Resume`], [`Transport`]) — in a single glob:
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! let report = Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .transport(Transport::Threads)
//!     .output_dir("parmonc_run")
//!     .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! println!("mean = {}", report.summary.means[0]);
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! A multi-host run splits the same builder across machines: the
//! collector listens, each worker joins and must build the *same*
//! configuration (enforced by the wire handshake — see
//! `docs/cluster.md`):
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! // Collector host: rank 0 simulates, collects, and serves joiners.
//! let report = Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .listen("0.0.0.0:7070")
//!     .output_dir("parmonc_run")
//!     .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! // Each worker host: dial in, get leased a rank, work the quota.
//! Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .join("collector-host:7070")
//!     .output_dir("scratch")
//!     .run_worker(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! Deliberately *not* here: the file-format, message and compat
//! internals (`files`, `messages`, `compat`), the raw RNG machinery
//! beyond what `RealizeFn` closures receive, and the `parmonc_ipc`
//! re-execution plumbing. Reach into the named modules for those.

pub use crate::config::{Exchange, ParmoncBuilder, Resume, RunConfig, Transport};
pub use crate::error::ParmoncError;
pub use crate::realize::{Realize, RealizeFn};
pub use crate::runner::{Parmonc, RunReport};
pub use parmonc_ipc::ReconnectPolicy;
