//! The one-stop import for PARMONC users.
//!
//! Everything a typical simulation program touches — the builder entry
//! point, the realization trait and its closure adapter, the report and
//! error types, and the run-shaping selectors ([`Exchange`],
//! [`Resume`], [`Transport`], [`Topology`]) — in a single glob:
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! let report = Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .transport(Transport::Threads)
//!     .output_dir("parmonc_run")
//!     .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! println!("mean = {}", report.summary.means[0]);
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! A multi-host run splits the same builder across machines: the
//! collector listens, each worker joins and must build the *same*
//! configuration (enforced by the wire handshake — see
//! `docs/cluster.md`). Networking is configured through one
//! [`NetOptions`] value:
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! // Collector host: rank 0 simulates, collects, and serves joiners.
//! let report = Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .net(NetOptions::listen("0.0.0.0:7070"))
//!     .output_dir("parmonc_run")
//!     .run(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! ```no_run
//! use parmonc::prelude::*;
//!
//! // Each worker host: dial in, get leased a rank, work the quota.
//! Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(4)
//!     .net(NetOptions::join("collector-host:7070"))
//!     .output_dir("scratch")
//!     .run_worker(RealizeFn::new(|rng, out| out[0] = rng.next_f64()))?;
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! Collection does not have to be a star: a k-ary [`Topology::Tree`]
//! turns interior worker ranks into relays that coalesce their
//! children's subtotals, so the collector receives O(arity) batches
//! per pass instead of O(m) messages — with bit-identical estimates:
//!
//! ```
//! use parmonc::prelude::*;
//!
//! let cfg = Parmonc::builder(1, 1)
//!     .max_sample_volume(10_000)
//!     .processors(8)
//!     .topology(Topology::Tree { arity: 2 })
//!     .build()?;
//! let plan = cfg.collection_plan();
//! assert_eq!(plan.parent(3), Some(1)); // rank 3 reports via relay 1
//! assert_eq!(plan.children(0), vec![1, 2]); // root sees only 2 ranks
//! # Ok::<(), ParmoncError>(())
//! ```
//!
//! Deliberately *not* here: the file-format, message and compat
//! internals (`files`, `messages`, `compat`), the raw RNG machinery
//! beyond what `RealizeFn` closures receive, and the `parmonc_ipc`
//! re-execution plumbing. Reach into the named modules for those.

pub use crate::config::{Exchange, NetOptions, ParmoncBuilder, Resume, RunConfig, Transport};
pub use crate::error::ParmoncError;
pub use crate::realize::{Realize, RealizeFn};
pub use crate::runner::{Parmonc, RunReport};
pub use parmonc_ipc::ReconnectPolicy;
pub use parmonc_mpi::{CollectionPlan, Topology};
