//! A call-compatible shim for the paper's C API (Section 3.2).
//!
//! The paper's main program is
//!
//! ```c
//! parmoncc(difftraj, &nrow, &ncol, &maxsv, &res, &seqnum,
//!          &perpass, &peraver);
//! ```
//!
//! [`parmoncc`] mirrors that argument list one-for-one (with `perpass`
//! and `peraver` in *minutes*, as in the paper), so the Section 4
//! listing ports mechanically.
//!
//! # A veneer, not a second runner
//!
//! `parmoncc` contains no simulation logic of its own: it maps its
//! eight arguments onto a [`Parmonc`] builder chain and calls
//! [`ParmoncBuilder::run`](crate::ParmoncBuilder::run) — nothing more.
//! A `parmoncc(...)` call and the equivalent builder chain (same shape,
//! volume, `seqnum`, periods, and `default_processors()` processor
//! count) therefore produce *bit-identical* estimates: same RNG stream
//! assignment, same formula-(5) averaging, same `RunReport.summary`.
//! The `compat_and_builder_reports_are_bit_identical` test pins this
//! down.
//!
//! New code should prefer [`crate::prelude`] and the [`Parmonc`]
//! builder, which add the knobs the C API never had (deadline, error
//! target, exchange mode, output dir, and the
//! [`Transport`](crate::Transport) backend selector).

use std::time::Duration;

use crate::config::Resume;
use crate::error::ParmoncError;
use crate::realize::Realize;
use crate::runner::{Parmonc, RunReport};

/// Runs a simulation with the paper's `parmoncc` argument list.
///
/// `res` follows the paper: `0` = new simulation, `1` = resume the
/// previous one (any other value is rejected). `perpass`/`peraver` are
/// in minutes. Results go to `parmonc_data/` under the current working
/// directory, exactly like the original.
///
/// # Errors
///
/// Returns [`ParmoncError::Config`] for an invalid `res` and
/// propagates all runner errors.
///
/// # Examples
///
/// ```no_run
/// use parmonc::compat::parmoncc;
/// use parmonc::RealizeFn;
///
/// let difftraj = RealizeFn::new(|rng, out| {
///     for entry in out.iter_mut() {
///         *entry = rng.next_f64();
///     }
/// });
/// // The paper's Section 4 listing:
/// let report = parmoncc(difftraj, 1000, 2, 1_000_000_000, 1, 2, 10, 20)?;
/// # let _ = report;
/// # Ok::<(), parmonc::ParmoncError>(())
/// ```
#[allow(clippy::too_many_arguments)] // the paper's signature, verbatim
pub fn parmoncc<R>(
    realization: R,
    nrow: usize,
    ncol: usize,
    maxsv: u64,
    res: i32,
    seqnum: u64,
    perpass: u64,
    peraver: u64,
) -> Result<RunReport, ParmoncError>
where
    R: Realize + Sync,
{
    let resume = match res {
        0 => Resume::New,
        1 => Resume::Resume,
        other => {
            return Err(ParmoncError::Config(format!(
                "res must be 0 (new) or 1 (resume), got {other}"
            )))
        }
    };
    Parmonc::builder(nrow, ncol)
        .max_sample_volume(maxsv)
        .resume(resume)
        .seqnum(seqnum)
        .processors(default_processors())
        .pass_period(Duration::from_secs(perpass * 60))
        .averaging_period(Duration::from_secs(peraver * 60))
        .run(realization)
}

/// The "MPI world size" of the shim: the paper's program inherits it
/// from `mpirun`; we inherit it from the host's available parallelism.
#[must_use]
pub fn default_processors() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realize::RealizeFn;
    use std::sync::Mutex;

    /// Serializes the tests that change the process-wide current
    /// directory (the shim always writes to `parmonc_data/` under cwd).
    static CWD_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `body` with cwd set to a fresh scratch directory, restoring
    /// the original cwd afterwards.
    fn in_scratch_cwd<T>(tag: &str, body: impl FnOnce() -> T) -> (std::path::PathBuf, T) {
        let dir = std::env::temp_dir().join(format!("parmonc-compat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let out = body();
        std::env::set_current_dir(prev).unwrap();
        (dir, out)
    }

    #[test]
    fn rejects_invalid_res_flag() {
        let r = RealizeFn::new(|_rng: &mut crate::RealizationStream, out: &mut [f64]| {
            out[0] = 1.0;
        });
        let err = parmoncc(r, 1, 1, 10, 2, 0, 10, 20).unwrap_err();
        assert!(err.to_string().contains("res must be 0"));
    }

    #[test]
    fn default_processors_is_positive() {
        assert!(default_processors() >= 1);
    }

    #[test]
    fn shim_runs_a_simulation_in_cwd_style_dir() {
        let _guard = CWD_LOCK.lock().unwrap();
        let (dir, result) = in_scratch_cwd("smoke", || {
            parmoncc(
                RealizeFn::new(|rng, out| out[0] = rng.next_f64()),
                1,
                1,
                2_000,
                0,
                0,
                10,
                20,
            )
        });
        let report = result.unwrap();
        assert_eq!(report.total_volume, 2_000);
        assert!((report.summary.means[0] - 0.5).abs() < 0.05);
        assert!(dir.join("parmonc_data/results/func.dat").is_file());
    }

    #[test]
    fn compat_and_builder_reports_are_bit_identical() {
        // The shim is a veneer: for the same fixed seed (seqnum) and
        // shape, its report must be *bit-identical* to the equivalent
        // builder call — not merely statistically close.
        let _guard = CWD_LOCK.lock().unwrap();
        let difftraj = || {
            RealizeFn::new(|rng: &mut crate::RealizationStream, out: &mut [f64]| {
                out[0] = rng.next_f64();
                out[1] = out[0] * out[0];
            })
        };
        let (_, shim) = in_scratch_cwd("veneer-shim", || {
            parmoncc(difftraj(), 1, 2, 3_000, 0, 7, 10, 20).unwrap()
        });
        let (_, built) = in_scratch_cwd("veneer-builder", || {
            Parmonc::builder(1, 2)
                .max_sample_volume(3_000)
                .resume(Resume::New)
                .seqnum(7)
                .processors(default_processors())
                .pass_period(Duration::from_secs(10 * 60))
                .averaging_period(Duration::from_secs(20 * 60))
                .run(difftraj())
                .unwrap()
        });
        // Every deterministic field of the report matches exactly;
        // only wall-clock timing fields may differ between the runs.
        assert_eq!(shim.summary, built.summary);
        assert_eq!(shim.total_volume, built.total_volume);
        assert_eq!(shim.new_volume, built.new_volume);
        assert_eq!(shim.resumed_volume, built.resumed_volume);
        assert_eq!(shim.processors, built.processors);
        assert_eq!(shim.worker_volumes, built.worker_volumes);
        assert_eq!(shim.lost_workers, built.lost_workers);
        assert_eq!(shim.reassigned_realizations, built.reassigned_realizations);
    }
}
