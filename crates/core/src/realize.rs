//! The user-supplied realization routine (paper Sections 2.3, 3.2).
//!
//! The paper's contract: a sequential routine that draws base random
//! numbers from `rnd128()` and returns one realization of the random
//! object — a matrix `[ζ_ij]`. Here the routine receives the positioned
//! [`RealizationStream`] (its private `rnd128`) and fills the row-major
//! output slice.

use parmonc_rng::RealizationStream;

/// A user routine that simulates a single realization of a random
/// object.
///
/// Implementations must be deterministic functions of the stream: all
/// randomness must come from `rng`. That is what makes the simulation
/// reproducible and resumable.
///
/// The trait is object safe, so heterogeneous workloads can be stored
/// as `Box<dyn Realize>`.
pub trait Realize {
    /// Simulates one realization, writing the `nrow × ncol` matrix into
    /// `out` (row-major). `out` arrives zeroed.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]);
}

/// Adapter turning a closure into a [`Realize`] implementation.
///
/// # Examples
///
/// ```
/// use parmonc::RealizeFn;
/// use parmonc::{StreamHierarchy, StreamId};
///
/// let pi_estimator = RealizeFn::new(|rng, out| {
///     let (x, y) = (rng.next_f64(), rng.next_f64());
///     out[0] = if x * x + y * y < 1.0 { 4.0 } else { 0.0 };
/// });
///
/// # use parmonc::Realize;
/// let mut stream = StreamHierarchy::default()
///     .realization_stream(StreamId::new(0, 0, 0)).unwrap();
/// let mut out = [0.0];
/// pi_estimator.realize(&mut stream, &mut out);
/// assert!(out[0] == 0.0 || out[0] == 4.0);
/// ```
pub struct RealizeFn<F> {
    f: F,
}

impl<F> RealizeFn<F>
where
    F: Fn(&mut RealizationStream, &mut [f64]),
{
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F> Realize for RealizeFn<F>
where
    F: Fn(&mut RealizationStream, &mut [f64]),
{
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (self.f)(rng, out)
    }
}

impl<F> core::fmt::Debug for RealizeFn<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RealizeFn").finish_non_exhaustive()
    }
}

impl<T: Realize + ?Sized> Realize for &T {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

impl<T: Realize + ?Sized> Realize for Box<T> {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

impl<T: Realize + ?Sized> Realize for std::sync::Arc<T> {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

/// A reusable buffer that feeds scalar `rnd128()`-style consumption from
/// the generator's batched fill path.
///
/// Realization routines that draw one number at a time (rejection loops,
/// data-dependent branching) can't call
/// [`RealizationStream::fill_f64`] directly because they don't know
/// their draw count up front. `DrawBatch` bridges the gap: it prefetches
/// a block through `fill_f64` — which drains the wide-lane engine — and
/// hands the values out one by one. Since the batched fill is bitwise
/// identical to sequential draws, the values are exactly the ones
/// [`RealizationStream::next_f64`] would have produced, in order.
///
/// Two caveats, both consequences of prefetching:
///
/// * the stream's draw accounting ([`RealizationStream::drawn`]) counts
///   prefetched-but-unconsumed values — up to one block of slack against
///   the `2^43` subsequence budget;
/// * call [`reset`](Self::reset) before switching the batch to a
///   different stream, or the leftover values of the old stream would
///   leak into the new one.
///
/// # Examples
///
/// ```
/// use parmonc::DrawBatch;
/// use parmonc::{StreamHierarchy, StreamId};
///
/// let mut stream = StreamHierarchy::default()
///     .realization_stream(StreamId::new(0, 0, 0)).unwrap();
/// let mut check = stream.clone();
/// let mut batch = DrawBatch::new();
/// for _ in 0..1000 {
///     assert_eq!(batch.next_f64(&mut stream), check.next_f64());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DrawBatch {
    buf: Vec<f64>,
    pos: usize,
}

impl DrawBatch {
    /// Default prefetch block: long enough to engage the SIMD fill
    /// kernel, small enough to stay in L1.
    const DEFAULT_BLOCK: usize = 256;

    /// Creates a batch with the default block size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_block_size(Self::DEFAULT_BLOCK)
    }

    /// Creates a batch that prefetches `block` values at a time.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    #[must_use]
    pub fn with_block_size(block: usize) -> Self {
        assert!(block > 0, "DrawBatch block size must be positive");
        Self {
            buf: vec![0.0; block],
            pos: block,
        }
    }

    /// The next base random number of `rng`'s sequence, refilling the
    /// prefetch buffer when it runs dry.
    #[inline]
    pub fn next_f64(&mut self, rng: &mut RealizationStream) -> f64 {
        if self.pos == self.buf.len() {
            rng.fill_f64(&mut self.buf);
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Number of prefetched values not yet handed out.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Discards any prefetched values. Required before reusing the
    /// batch with a different stream.
    pub fn reset(&mut self) {
        self.pos = self.buf.len();
    }
}

impl Default for DrawBatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::{StreamHierarchy, StreamId};

    fn stream() -> RealizationStream {
        StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap()
    }

    #[test]
    fn closure_adapter_runs() {
        let r = RealizeFn::new(|rng, out| out[0] = rng.next_f64());
        let mut out = [0.0];
        r.realize(&mut stream(), &mut out);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn same_stream_same_realization() {
        let r = RealizeFn::new(|rng, out| {
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        });
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        r.realize(&mut stream(), &mut a);
        r.realize(&mut stream(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Realize> = Box::new(RealizeFn::new(|rng, out| {
            out[0] = rng.next_f64();
        }));
        let mut out = [0.0];
        boxed.realize(&mut stream(), &mut out);
        assert!(out[0] > 0.0);
    }

    #[test]
    fn blanket_impls() {
        let inner = RealizeFn::new(|_rng: &mut RealizationStream, out: &mut [f64]| out[0] = 1.0);
        let mut out = [0.0];
        Realize::realize(&&inner, &mut stream(), &mut out);
        assert_eq!(out[0], 1.0);
        let arc = std::sync::Arc::new(inner);
        out[0] = 0.0;
        arc.realize(&mut stream(), &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let r = RealizeFn::new(|_: &mut RealizationStream, _: &mut [f64]| {});
        assert!(format!("{r:?}").contains("RealizeFn"));
    }

    #[test]
    fn draw_batch_yields_the_exact_sequence() {
        let mut batched = stream();
        let mut scalar = stream();
        let mut batch = DrawBatch::with_block_size(16);
        for i in 0..1000 {
            assert_eq!(batch.next_f64(&mut batched), scalar.next_f64(), "draw {i}");
        }
    }

    #[test]
    fn draw_batch_reset_discards_prefetch() {
        let mut s = stream();
        let mut batch = DrawBatch::new();
        let _ = batch.next_f64(&mut s);
        assert!(batch.pending() > 0);
        batch.reset();
        assert_eq!(batch.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn draw_batch_rejects_zero_block() {
        let _ = DrawBatch::with_block_size(0);
    }
}
