//! The user-supplied realization routine (paper Sections 2.3, 3.2).
//!
//! The paper's contract: a sequential routine that draws base random
//! numbers from `rnd128()` and returns one realization of the random
//! object — a matrix `[ζ_ij]`. Here the routine receives the positioned
//! [`RealizationStream`] (its private `rnd128`) and fills the row-major
//! output slice.

use parmonc_rng::RealizationStream;

/// A user routine that simulates a single realization of a random
/// object.
///
/// Implementations must be deterministic functions of the stream: all
/// randomness must come from `rng`. That is what makes the simulation
/// reproducible and resumable.
///
/// The trait is object safe, so heterogeneous workloads can be stored
/// as `Box<dyn Realize>`.
pub trait Realize {
    /// Simulates one realization, writing the `nrow × ncol` matrix into
    /// `out` (row-major). `out` arrives zeroed.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]);
}

/// Adapter turning a closure into a [`Realize`] implementation.
///
/// # Examples
///
/// ```
/// use parmonc::RealizeFn;
/// use parmonc::{StreamHierarchy, StreamId};
///
/// let pi_estimator = RealizeFn::new(|rng, out| {
///     let (x, y) = (rng.next_f64(), rng.next_f64());
///     out[0] = if x * x + y * y < 1.0 { 4.0 } else { 0.0 };
/// });
///
/// # use parmonc::Realize;
/// let mut stream = StreamHierarchy::default()
///     .realization_stream(StreamId::new(0, 0, 0)).unwrap();
/// let mut out = [0.0];
/// pi_estimator.realize(&mut stream, &mut out);
/// assert!(out[0] == 0.0 || out[0] == 4.0);
/// ```
pub struct RealizeFn<F> {
    f: F,
}

impl<F> RealizeFn<F>
where
    F: Fn(&mut RealizationStream, &mut [f64]),
{
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F> Realize for RealizeFn<F>
where
    F: Fn(&mut RealizationStream, &mut [f64]),
{
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (self.f)(rng, out)
    }
}

impl<F> core::fmt::Debug for RealizeFn<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RealizeFn").finish_non_exhaustive()
    }
}

impl<T: Realize + ?Sized> Realize for &T {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

impl<T: Realize + ?Sized> Realize for Box<T> {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

impl<T: Realize + ?Sized> Realize for std::sync::Arc<T> {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        (**self).realize(rng, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::{StreamHierarchy, StreamId};

    fn stream() -> RealizationStream {
        StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap()
    }

    #[test]
    fn closure_adapter_runs() {
        let r = RealizeFn::new(|rng, out| out[0] = rng.next_f64());
        let mut out = [0.0];
        r.realize(&mut stream(), &mut out);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn same_stream_same_realization() {
        let r = RealizeFn::new(|rng, out| {
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        });
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        r.realize(&mut stream(), &mut a);
        r.realize(&mut stream(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Realize> = Box::new(RealizeFn::new(|rng, out| {
            out[0] = rng.next_f64();
        }));
        let mut out = [0.0];
        boxed.realize(&mut stream(), &mut out);
        assert!(out[0] > 0.0);
    }

    #[test]
    fn blanket_impls() {
        let inner = RealizeFn::new(|_rng: &mut RealizationStream, out: &mut [f64]| out[0] = 1.0);
        let mut out = [0.0];
        Realize::realize(&&inner, &mut stream(), &mut out);
        assert_eq!(out[0], 1.0);
        let arc = std::sync::Arc::new(inner);
        out[0] = 0.0;
        arc.realize(&mut stream(), &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let r = RealizeFn::new(|_: &mut RealizationStream, _: &mut [f64]| {});
        assert!(format!("{r:?}").contains("RealizeFn"));
    }
}
