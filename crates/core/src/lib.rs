//! PARMONC — massively parallel Monte Carlo simulation without MPI in
//! user code.
//!
//! This crate is the library proper of the PARMONC reproduction
//! (Marchenko, PaCT 2011): the user writes a *sequential* routine that
//! simulates a single realization of a random object (the paper's
//! `difftraj`), hands it to [`Parmonc`], and the runtime
//!
//! * initializes the parallel RNG and assigns every processor and every
//!   realization its own leapfrogged subsequence (Section 2.4),
//! * distributes realizations across processors with no load balancing
//!   needed — all processors work independently and exchange data
//!   asynchronously (Section 2.2),
//! * periodically ships subtotal sums `(Σζ, Σζ², l_m)` to rank 0, which
//!   averages them by formula (5) and saves the result matrices with
//!   absolute/relative errors to files (Sections 2.2, 3.6),
//! * supports resuming a terminated simulation with automatic averaging
//!   of the previous results (`res = 1`, Section 3.2), and
//! * ships `manaver`/`genparam` equivalents (Sections 3.4, 3.5).
//!
//! # The paper's example, in this API
//!
//! The C listing in Section 4 of the paper becomes:
//!
//! ```no_run
//! use parmonc::{Parmonc, RealizeFn};
//!
//! // difftraj: simulate one realization, fill the 1000x2 matrix.
//! let difftraj = RealizeFn::new(|rng, out| {
//!     for entry in out.iter_mut() {
//!         *entry = rng.next_f64(); // stand-in for the SDE trajectory
//!     }
//! });
//!
//! let report = Parmonc::builder(1000, 2)
//!     .max_sample_volume(1_000_000_000)
//!     .seqnum(2)
//!     .processors(8)
//!     .pass_period(std::time::Duration::from_secs(10 * 60))   // perpass
//!     .averaging_period(std::time::Duration::from_secs(20 * 60)) // peraver
//!     .output_dir("parmonc_run")
//!     .run(difftraj)?;
//! println!("L = {}, eps_max = {}", report.total_volume, report.summary.eps_max);
//! # Ok::<(), parmonc::ParmoncError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod compat;
pub mod config;
pub mod error;
pub mod files;
pub mod genparam;
pub mod manaver;
pub mod messages;
pub mod prelude;
pub mod realize;
pub mod runner;

pub use config::{Exchange, NetOptions, ParmoncBuilder, Resume, RunConfig, Transport};
pub use error::ParmoncError;
pub use files::ResultsDir;
pub use parmonc_ipc::ReconnectPolicy;
pub use parmonc_mpi::{CollectionPlan, Topology};
pub use realize::{DrawBatch, Realize, RealizeFn};
pub use runner::{Parmonc, RunReport};

pub use parmonc_rng::{LeapConfig, RealizationStream, StreamHierarchy, StreamId};
pub use parmonc_stats::{MatrixAccumulator, MatrixSummary};

/// Re-export of the multi-process transport crate, for callers that
/// need the re-execution plumbing directly: [`ipc::is_worker`] to guard
/// destructive test setup against running again in a re-executed
/// worker, and [`ipc::WORKER_FLAG`] so argument parsers can strip the
/// hidden re-execution marker. Selecting the backend itself goes
/// through [`ParmoncBuilder::transport`] with [`Transport`].
pub use parmonc_ipc as ipc;
