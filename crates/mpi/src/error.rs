//! Error type of the message-passing substrate.

use core::fmt;

/// Errors produced by the message-passing substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The destination rank does not exist in the communicator.
    InvalidRank {
        /// The requested rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// The peer ranks disconnected (a rank panicked or exited early)
    /// while this rank was blocked in `recv` or a collective.
    Disconnected,
    /// A rank panicked inside [`crate::World::run`]; the panic message
    /// is preserved when it was a string.
    RankPanicked {
        /// The rank that panicked.
        rank: usize,
        /// Best-effort panic message.
        message: String,
    },
    /// A decoded message payload was malformed.
    MalformedPayload {
        /// Human-readable description of what failed to decode.
        what: &'static str,
    },
    /// `World::run` was asked for zero ranks.
    EmptyWorld,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRank { rank, size } => {
                write!(f, "rank {rank} is outside the communicator of size {size}")
            }
            Self::Disconnected => write!(f, "peer ranks disconnected"),
            Self::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            Self::MalformedPayload { what } => write!(f, "malformed payload: {what}"),
            Self::EmptyWorld => write!(f, "world size must be at least 1"),
        }
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MpiError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("rank 9"));
        assert!(MpiError::Disconnected.to_string().contains("disconnected"));
        assert!(MpiError::EmptyWorld.to_string().contains("at least 1"));
        assert!(MpiError::MalformedPayload {
            what: "truncated f64"
        }
        .to_string()
        .contains("truncated"));
    }
}
