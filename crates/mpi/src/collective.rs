//! Collective operations built on the point-to-point layer.
//!
//! PARMONC itself only needs the asynchronous gather pattern, but a
//! credible MPI subset ships the classic collectives; the runner uses
//! [`barrier`] at start-up and the tests use [`gather`] and
//! [`reduce_sum`] to validate the substrate against closed-form
//! answers.
//!
//! Every collective routes through a [`CollectionPlan`]: the classic
//! entry points ([`barrier`], [`gather`], [`reduce_sum`]) are thin
//! wrappers over the `_plan` variants with a star plan, so the same
//! code runs a flat star or a k-ary reduction tree. The root is
//! explicit everywhere — nothing below assumes rank 0.
//!
//! Determinism contract: [`reduce_sum_plan`] folds contributions in
//! ascending *rank* order at the root (never partial sums at relays,
//! never arrival order), so the result is bit-identical across
//! topologies and backends despite floating-point non-associativity.

use crate::envelope::{PayloadReader, PayloadWriter, Tag};
use crate::error::MpiError;
use crate::plan::{CollectionPlan, Topology};
use crate::transport::Transport;

/// Tag space reserved for collectives (high bit set so user tags in the
/// low range never collide).
const COLLECTIVE_BASE: u32 = 0x8000_0000;

const TAG_BARRIER_IN: Tag = Tag(COLLECTIVE_BASE);
const TAG_BARRIER_OUT: Tag = Tag(COLLECTIVE_BASE + 1);
const TAG_BCAST: Tag = Tag(COLLECTIVE_BASE + 2);
const TAG_GATHER: Tag = Tag(COLLECTIVE_BASE + 3);

/// The star plan the classic wrappers use: today's shape, explicit
/// root.
fn star(root: usize, size: usize) -> CollectionPlan {
    CollectionPlan::new(Topology::Star, root, size)
}

fn check_root<T: Transport>(comm: &T, root: usize) -> Result<(), MpiError> {
    if root >= comm.size() {
        return Err(MpiError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    }
    Ok(())
}

/// Blocks until every rank has entered the barrier (rooted at rank 0,
/// star-shaped: gather-in then broadcast-out).
///
/// # Errors
///
/// Propagates transport errors ([`MpiError::Disconnected`]).
pub fn barrier<T: Transport>(comm: &mut T) -> Result<(), MpiError> {
    let plan = star(0, comm.size());
    barrier_plan(comm, &plan)
}

/// Blocks until every rank has entered the barrier, synchronizing
/// along the plan's edges: arrivals roll up child → parent, the
/// release rolls back down parent → child.
///
/// # Errors
///
/// Propagates transport errors ([`MpiError::Disconnected`]).
pub fn barrier_plan<T: Transport>(comm: &mut T, plan: &CollectionPlan) -> Result<(), MpiError> {
    let rank = comm.rank();
    for &child in &plan.children(rank) {
        comm.recv(Some(child), Some(TAG_BARRIER_IN))?;
    }
    if let Some(parent) = plan.parent(rank) {
        comm.send(parent, TAG_BARRIER_IN, &[])?;
        comm.recv(Some(parent), Some(TAG_BARRIER_OUT))?;
    }
    for &child in &plan.children(rank) {
        comm.send(child, TAG_BARRIER_OUT, &[])?;
    }
    Ok(())
}

/// Broadcasts `value` (a slice of f64 on the root, ignored elsewhere)
/// from `root` to all ranks; every rank returns the broadcast vector.
///
/// # Errors
///
/// Propagates transport errors, and [`MpiError::InvalidRank`] for a bad
/// root.
pub fn broadcast_f64<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Vec<f64>, MpiError> {
    check_root(comm, root)?;
    if comm.rank() == root {
        let mut w = PayloadWriter::with_capacity(8 + value.len() * 8);
        w.put_f64_slice(value);
        let payload = w.finish();
        for dest in 0..comm.size() {
            if dest != root {
                comm.send_bytes(dest, TAG_BCAST, payload.clone())?;
            }
        }
        Ok(value.to_vec())
    } else {
        let env = comm.recv(Some(root), Some(TAG_BCAST))?;
        PayloadReader::new(env.payload).get_f64_vec()
    }
}

/// Gathers each rank's `value` vector on `root`; the root returns
/// `Some(values_by_rank)`, other ranks return `None`.
///
/// # Errors
///
/// Propagates transport errors, and [`MpiError::InvalidRank`] for a bad
/// root.
pub fn gather<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
    check_root(comm, root)?;
    let plan = star(root, comm.size());
    gather_plan(comm, &plan, value)
}

/// Gathers each rank's `value` vector on the plan's root, rolling the
/// contributions up the tree: each rank receives one coalesced batch
/// of `(rank, vector)` entries per child (covering the child's whole
/// subtree), appends its own entry, and forwards one batch to its
/// parent. The root returns `Some(values_by_rank)`, other ranks return
/// `None`.
///
/// # Errors
///
/// Propagates transport errors; [`MpiError::MalformedPayload`] if a
/// batch names an out-of-range or duplicate rank.
pub fn gather_plan<T: Transport>(
    comm: &mut T,
    plan: &CollectionPlan,
    value: &[f64],
) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
    let rank = comm.rank();
    let size = comm.size();
    let mut by_rank: Vec<Option<Vec<f64>>> = vec![None; size];
    by_rank[rank] = Some(value.to_vec());
    for &child in &plan.children(rank) {
        let env = comm.recv(Some(child), Some(TAG_GATHER))?;
        let mut r = PayloadReader::new(env.payload);
        let count = r.get_u64()?;
        for _ in 0..count {
            let entry_rank =
                usize::try_from(r.get_u64()?).map_err(|_| MpiError::MalformedPayload {
                    what: "gather entry rank does not fit",
                })?;
            let vec = r.get_f64_vec()?;
            if entry_rank >= size || by_rank[entry_rank].is_some() {
                return Err(MpiError::MalformedPayload {
                    what: "gather batch names an out-of-range or duplicate rank",
                });
            }
            by_rank[entry_rank] = Some(vec);
        }
    }
    match plan.parent(rank) {
        None => {
            let mut out = Vec::with_capacity(size);
            for slot in by_rank {
                out.push(slot.ok_or(MpiError::MalformedPayload {
                    what: "gather finished with a rank unaccounted for",
                })?);
            }
            Ok(Some(out))
        }
        Some(parent) => {
            let entries: Vec<(usize, &Vec<f64>)> = by_rank
                .iter()
                .enumerate()
                .filter_map(|(r, v)| v.as_ref().map(|v| (r, v)))
                .collect();
            let mut w = PayloadWriter::with_capacity(
                8 + entries.iter().map(|(_, v)| 16 + v.len() * 8).sum::<usize>(),
            );
            w.put_u64(entries.len() as u64);
            for (entry_rank, vec) in entries {
                w.put_u64(entry_rank as u64);
                w.put_f64_slice(vec);
            }
            comm.send_bytes(parent, TAG_GATHER, w.finish())?;
            Ok(None)
        }
    }
}

/// Reduces each rank's `value` vector by entrywise summation on `root`;
/// the root returns `Some(sums)`, other ranks return `None`.
///
/// This is the collective formulation of the paper's formula (5): the
/// averaged estimate is the reduce-sum of per-processor `(Σζ, Σζ², l)`
/// divided through by the total volume.
///
/// # Errors
///
/// Propagates transport errors; [`MpiError::MalformedPayload`] if rank
/// contributions have mismatched lengths.
pub fn reduce_sum<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Option<Vec<f64>>, MpiError> {
    check_root(comm, root)?;
    let plan = star(root, comm.size());
    reduce_sum_plan(comm, &plan, value)
}

/// Reduces each rank's `value` vector by entrywise summation on the
/// plan's root.
///
/// Implemented as a tree gather of the raw per-rank vectors followed
/// by one ascending-rank fold at the root — relays forward bytes, they
/// never pre-sum — so the result is bit-identical whatever the plan's
/// shape. The cost is O(m) payload at the root either way; what the
/// tree saves is the root's per-message receive overhead.
///
/// # Errors
///
/// Propagates transport errors; [`MpiError::MalformedPayload`] if rank
/// contributions have mismatched lengths.
pub fn reduce_sum_plan<T: Transport>(
    comm: &mut T,
    plan: &CollectionPlan,
    value: &[f64],
) -> Result<Option<Vec<f64>>, MpiError> {
    let Some(by_rank) = gather_plan(comm, plan, value)? else {
        return Ok(None);
    };
    let mut acc = vec![0.0f64; value.len()];
    for contribution in &by_rank {
        if contribution.len() != acc.len() {
            return Err(MpiError::MalformedPayload {
                what: "reduce contributions have mismatched lengths",
            });
        }
        for (a, c) in acc.iter_mut().zip(contribution) {
            *a += c;
        }
    }
    Ok(Some(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes() {
        // Count how many ranks arrived before anyone left; with a
        // correct barrier, every rank observes all `size` arrivals.
        let arrived = Arc::new(AtomicUsize::new(0));
        let arrived2 = Arc::clone(&arrived);
        let results = World::run(8, move |comm| {
            arrived2.fetch_add(1, Ordering::SeqCst);
            barrier(comm)?;
            Ok(arrived2.load(Ordering::SeqCst))
        })
        .unwrap();
        for r in results {
            assert_eq!(r.unwrap(), 8);
        }
    }

    #[test]
    fn tree_barrier_synchronizes_at_non_zero_root() {
        let arrived = Arc::new(AtomicUsize::new(0));
        let arrived2 = Arc::clone(&arrived);
        let results = World::run(7, move |comm| {
            let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 3, comm.size());
            arrived2.fetch_add(1, Ordering::SeqCst);
            barrier_plan(comm, &plan)?;
            Ok(arrived2.load(Ordering::SeqCst))
        })
        .unwrap();
        for r in results {
            assert_eq!(r.unwrap(), 7);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = World::run(5, |comm| {
            let data = if comm.rank() == 2 {
                vec![1.5, -2.5, 3.5]
            } else {
                Vec::new()
            };
            broadcast_f64(comm, 2, &data)
        })
        .unwrap();
        for r in results {
            assert_eq!(r.unwrap(), vec![1.5, -2.5, 3.5]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = World::run(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            gather(comm, 0, &mine)
        })
        .unwrap();
        let gathered = results[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (rank, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), rank + 1);
            assert!(v.iter().all(|x| *x == rank as f64));
        }
        for r in &results[1..] {
            assert!(r.as_ref().unwrap().is_none());
        }
    }

    #[test]
    fn gather_collects_at_non_zero_root() {
        // The historical bug surface: gather/reduce silently assumed
        // rank 0. Root 2 must receive everything, rank 0 nothing.
        let results = World::run(5, |comm| {
            let mine = vec![comm.rank() as f64 + 0.25];
            gather(comm, 2, &mine)
        })
        .unwrap();
        assert!(results[0].as_ref().unwrap().is_none());
        let gathered = results[2].as_ref().unwrap().as_ref().unwrap();
        for (rank, v) in gathered.iter().enumerate() {
            assert_eq!(v, &vec![rank as f64 + 0.25]);
        }
    }

    #[test]
    fn tree_gather_matches_star_gather() {
        let star = World::run(9, |comm| {
            let mine = vec![comm.rank() as f64 * 0.1; 3];
            gather(comm, 0, &mine)
        })
        .unwrap();
        let tree = World::run(9, |comm| {
            let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 0, comm.size());
            let mine = vec![comm.rank() as f64 * 0.1; 3];
            gather_plan(comm, &plan, &mine)
        })
        .unwrap();
        assert_eq!(
            star[0].as_ref().unwrap().as_ref().unwrap(),
            tree[0].as_ref().unwrap().as_ref().unwrap()
        );
    }

    #[test]
    fn reduce_sums_entrywise() {
        let results = World::run(6, |comm| {
            let mine = vec![comm.rank() as f64, 1.0];
            reduce_sum(comm, 0, &mine)
        })
        .unwrap();
        let sums = results[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(sums, &vec![(0..6).sum::<usize>() as f64, 6.0]);
    }

    #[test]
    fn reduce_sums_at_non_zero_root() {
        let results = World::run(6, |comm| {
            let mine = vec![comm.rank() as f64, 1.0];
            reduce_sum(comm, 4, &mine)
        })
        .unwrap();
        assert!(results[0].as_ref().unwrap().is_none());
        let sums = results[4].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(sums, &vec![15.0, 6.0]);
    }

    #[test]
    fn tree_reduce_is_bit_identical_to_star_reduce() {
        // Values chosen so a different fold order would change the
        // rounding: the tree must fold in rank order at the root, not
        // merge partial sums at relays.
        let contributions: Vec<f64> = (0..9)
            .map(|r| 1.0 + (r as f64) * 1e-16 + (r as f64).exp())
            .collect();
        let star = {
            let c = contributions.clone();
            World::run(9, move |comm| reduce_sum(comm, 0, &[c[comm.rank()]])).unwrap()
        };
        let tree = {
            let c = contributions.clone();
            World::run(9, move |comm| {
                let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 0, comm.size());
                reduce_sum_plan(comm, &plan, &[c[comm.rank()]])
            })
            .unwrap()
        };
        let s = star[0].as_ref().unwrap().as_ref().unwrap()[0];
        let t = tree[0].as_ref().unwrap().as_ref().unwrap()[0];
        assert_eq!(s.to_bits(), t.to_bits(), "fold order leaked into the sum");
    }

    #[test]
    fn invalid_root_rejected() {
        let mut comms = World::communicators(2).unwrap();
        assert!(matches!(
            broadcast_f64(&mut comms[0], 7, &[]),
            Err(MpiError::InvalidRank { rank: 7, .. })
        ));
        assert!(matches!(
            reduce_sum(&mut comms[0], 7, &[]),
            Err(MpiError::InvalidRank { rank: 7, .. })
        ));
    }

    #[test]
    fn collectives_compose_with_user_traffic() {
        // User messages with low tags must not be consumed by
        // collectives thanks to the reserved tag space.
        let results = World::run(3, |comm| {
            if comm.rank() == 1 {
                comm.send(0, Tag(5), b"user")?;
            }
            barrier(comm)?;
            if comm.rank() == 0 {
                let env = comm.recv(Some(1), Some(Tag(5)))?;
                Ok(env.payload.to_vec())
            } else {
                Ok(Vec::new())
            }
        })
        .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), b"user");
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let results = World::run(1, |comm| {
            barrier(comm)?;
            let b = broadcast_f64(comm, 0, &[1.0])?;
            let g = gather(comm, 0, &[2.0])?;
            let r = reduce_sum(comm, 0, &[3.0])?;
            Ok((b, g, r))
        })
        .unwrap();
        let (b, g, r) = results[0].as_ref().unwrap();
        assert_eq!(b, &vec![1.0]);
        assert_eq!(g.as_ref().unwrap(), &vec![vec![2.0]]);
        assert_eq!(r.as_ref().unwrap(), &vec![3.0]);
    }
}
