//! Collective operations built on the point-to-point layer.
//!
//! PARMONC itself only needs the asynchronous gather pattern, but a
//! credible MPI subset ships the classic collectives; the runner uses
//! [`barrier`] at start-up and the tests use [`gather`] and
//! [`reduce_sum`] to validate the substrate against closed-form
//! answers.

use crate::envelope::{PayloadReader, PayloadWriter, Tag};
use crate::error::MpiError;
use crate::transport::Transport;

/// Tag space reserved for collectives (high bit set so user tags in the
/// low range never collide).
const COLLECTIVE_BASE: u32 = 0x8000_0000;

const TAG_BARRIER_IN: Tag = Tag(COLLECTIVE_BASE);
const TAG_BARRIER_OUT: Tag = Tag(COLLECTIVE_BASE + 1);
const TAG_BCAST: Tag = Tag(COLLECTIVE_BASE + 2);
const TAG_GATHER: Tag = Tag(COLLECTIVE_BASE + 3);
const TAG_REDUCE: Tag = Tag(COLLECTIVE_BASE + 4);

/// Blocks until every rank has entered the barrier (flat tree rooted at
/// rank 0: gather-in then broadcast-out).
///
/// # Errors
///
/// Propagates transport errors ([`MpiError::Disconnected`]).
pub fn barrier<T: Transport>(comm: &mut T) -> Result<(), MpiError> {
    if comm.rank() == 0 {
        for _ in 1..comm.size() {
            comm.recv(None, Some(TAG_BARRIER_IN))?;
        }
        for dest in 1..comm.size() {
            comm.send(dest, TAG_BARRIER_OUT, &[])?;
        }
    } else {
        comm.send(0, TAG_BARRIER_IN, &[])?;
        comm.recv(Some(0), Some(TAG_BARRIER_OUT))?;
    }
    Ok(())
}

/// Broadcasts `value` (a slice of f64 on the root, ignored elsewhere)
/// from `root` to all ranks; every rank returns the broadcast vector.
///
/// # Errors
///
/// Propagates transport errors, and [`MpiError::InvalidRank`] for a bad
/// root.
pub fn broadcast_f64<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Vec<f64>, MpiError> {
    if root >= comm.size() {
        return Err(MpiError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    }
    if comm.rank() == root {
        let mut w = PayloadWriter::with_capacity(8 + value.len() * 8);
        w.put_f64_slice(value);
        let payload = w.finish();
        for dest in 0..comm.size() {
            if dest != root {
                comm.send_bytes(dest, TAG_BCAST, payload.clone())?;
            }
        }
        Ok(value.to_vec())
    } else {
        let env = comm.recv(Some(root), Some(TAG_BCAST))?;
        PayloadReader::new(env.payload).get_f64_vec()
    }
}

/// Gathers each rank's `value` vector on `root`; the root returns
/// `Some(values_by_rank)`, other ranks return `None`.
///
/// # Errors
///
/// Propagates transport errors, and [`MpiError::InvalidRank`] for a bad
/// root.
pub fn gather<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
    if root >= comm.size() {
        return Err(MpiError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    }
    if comm.rank() == root {
        let mut by_rank: Vec<Vec<f64>> = vec![Vec::new(); comm.size()];
        by_rank[root] = value.to_vec();
        for _ in 0..comm.size() - 1 {
            let env = comm.recv(None, Some(TAG_GATHER))?;
            let source = env.source;
            by_rank[source] = PayloadReader::new(env.payload).get_f64_vec()?;
        }
        Ok(Some(by_rank))
    } else {
        let mut w = PayloadWriter::with_capacity(8 + value.len() * 8);
        w.put_f64_slice(value);
        comm.send_bytes(root, TAG_GATHER, w.finish())?;
        Ok(None)
    }
}

/// Reduces each rank's `value` vector by entrywise summation on `root`;
/// the root returns `Some(sums)`, other ranks return `None`.
///
/// This is the collective formulation of the paper's formula (5): the
/// averaged estimate is the reduce-sum of per-processor `(Σζ, Σζ², l)`
/// divided through by the total volume.
///
/// # Errors
///
/// Propagates transport errors; [`MpiError::MalformedPayload`] if rank
/// contributions have mismatched lengths.
pub fn reduce_sum<T: Transport>(
    comm: &mut T,
    root: usize,
    value: &[f64],
) -> Result<Option<Vec<f64>>, MpiError> {
    if root >= comm.size() {
        return Err(MpiError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    }
    if comm.rank() == root {
        let mut acc = value.to_vec();
        for _ in 0..comm.size() - 1 {
            let env = comm.recv(None, Some(TAG_REDUCE))?;
            let contribution = PayloadReader::new(env.payload).get_f64_vec()?;
            if contribution.len() != acc.len() {
                return Err(MpiError::MalformedPayload {
                    what: "reduce contributions have mismatched lengths",
                });
            }
            for (a, c) in acc.iter_mut().zip(&contribution) {
                *a += c;
            }
        }
        Ok(Some(acc))
    } else {
        let mut w = PayloadWriter::with_capacity(8 + value.len() * 8);
        w.put_f64_slice(value);
        comm.send_bytes(root, TAG_REDUCE, w.finish())?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes() {
        // Count how many ranks arrived before anyone left; with a
        // correct barrier, every rank observes all `size` arrivals.
        let arrived = Arc::new(AtomicUsize::new(0));
        let arrived2 = Arc::clone(&arrived);
        let results = World::run(8, move |comm| {
            arrived2.fetch_add(1, Ordering::SeqCst);
            barrier(comm)?;
            Ok(arrived2.load(Ordering::SeqCst))
        })
        .unwrap();
        for r in results {
            assert_eq!(r.unwrap(), 8);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = World::run(5, |comm| {
            let data = if comm.rank() == 2 {
                vec![1.5, -2.5, 3.5]
            } else {
                Vec::new()
            };
            broadcast_f64(comm, 2, &data)
        })
        .unwrap();
        for r in results {
            assert_eq!(r.unwrap(), vec![1.5, -2.5, 3.5]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = World::run(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            gather(comm, 0, &mine)
        })
        .unwrap();
        let gathered = results[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (rank, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), rank + 1);
            assert!(v.iter().all(|x| *x == rank as f64));
        }
        for r in &results[1..] {
            assert!(r.as_ref().unwrap().is_none());
        }
    }

    #[test]
    fn reduce_sums_entrywise() {
        let results = World::run(6, |comm| {
            let mine = vec![comm.rank() as f64, 1.0];
            reduce_sum(comm, 0, &mine)
        })
        .unwrap();
        let sums = results[0].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(sums, &vec![(0..6).sum::<usize>() as f64, 6.0]);
    }

    #[test]
    fn invalid_root_rejected() {
        let mut comms = World::communicators(2).unwrap();
        assert!(matches!(
            broadcast_f64(&mut comms[0], 7, &[]),
            Err(MpiError::InvalidRank { rank: 7, .. })
        ));
    }

    #[test]
    fn collectives_compose_with_user_traffic() {
        // User messages with low tags must not be consumed by
        // collectives thanks to the reserved tag space.
        let results = World::run(3, |comm| {
            if comm.rank() == 1 {
                comm.send(0, Tag(5), b"user")?;
            }
            barrier(comm)?;
            if comm.rank() == 0 {
                let env = comm.recv(Some(1), Some(Tag(5)))?;
                Ok(env.payload.to_vec())
            } else {
                Ok(Vec::new())
            }
        })
        .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), b"user");
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let results = World::run(1, |comm| {
            barrier(comm)?;
            let b = broadcast_f64(comm, 0, &[1.0])?;
            let g = gather(comm, 0, &[2.0])?;
            let r = reduce_sum(comm, 0, &[3.0])?;
            Ok((b, g, r))
        })
        .unwrap();
        let (b, g, r) = results[0].as_ref().unwrap();
        assert_eq!(b, &vec![1.0]);
        assert_eq!(g.as_ref().unwrap(), &vec![vec![2.0]]);
        assert_eq!(r.as_ref().unwrap(), &vec![3.0]);
    }
}
