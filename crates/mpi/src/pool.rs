//! A small freelist of send buffers.
//!
//! In the strictest exchange mode a worker encodes and sends a
//! subtotal after *every* realization; allocating a fresh ~32 KB
//! buffer per message makes the allocator a hot-path participant. A
//! [`BufferPool`] keeps a bounded stack of retired allocations: the
//! sender takes one, encodes into it, freezes it into a
//! [`Bytes`] payload (no copy — see [`crate::bytes`]), and once the
//! receiver has decoded the message the allocation is
//! [`recycle`](BufferPool::recycle)d for the next send. Within one
//! process (threads-as-ranks substrate) the same pool serves both
//! sides, so steady-state traffic reuses a handful of buffers instead
//! of allocating per message.

use std::sync::Mutex;

use crate::bytes::{Bytes, BytesMut};

/// Default bound on retained buffers (a few in-flight messages per
/// rank; beyond that, excess buffers are simply dropped).
pub const DEFAULT_POOL_CAPACITY: usize = 64;

/// A bounded, thread-safe freelist of byte buffers.
///
/// # Examples
///
/// ```
/// use parmonc_mpi::pool::BufferPool;
///
/// let pool = BufferPool::default();
/// let mut w = pool.take(1024);
/// w.put_u64_le(7);
/// let payload = w.freeze();
/// // ... send, receive, decode ...
/// assert!(pool.recycle(payload));
/// // The next take reuses the same allocation.
/// assert!(pool.take(8).capacity() >= 1024);
/// ```
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool retaining at most `capacity` idle buffers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            capacity,
        }
    }

    /// Takes a cleared builder with at least `min_capacity` bytes
    /// reserved, reusing a retired allocation when one is available.
    #[must_use]
    pub fn take(&self, min_capacity: usize) -> BytesMut {
        let recycled = self.free.lock().expect("buffer pool lock poisoned").pop();
        let mut w = match recycled {
            Some(v) => BytesMut::from_vec(v),
            None => BytesMut::with_capacity(min_capacity),
        };
        if w.capacity() < min_capacity {
            w.reserve(min_capacity);
        }
        w
    }

    /// Returns a payload's backing allocation to the freelist.
    ///
    /// Succeeds only when `payload` is the last handle to its
    /// allocation and the pool is not full; otherwise the buffer is
    /// dropped normally and `false` is returned (which is fine — the
    /// pool is an optimization, not an obligation).
    pub fn recycle(&self, payload: Bytes) -> bool {
        let Some(v) = payload.try_reclaim() else {
            return false;
        };
        let mut free = self.free.lock().expect("buffer pool lock poisoned");
        if free.len() >= self.capacity {
            return false;
        }
        free.push(v);
        true
    }

    /// Number of idle buffers currently retained.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.lock().expect("buffer pool lock poisoned").len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(DEFAULT_POOL_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_capacity() {
        let pool = BufferPool::new(4);
        let mut w = pool.take(4096);
        w.put_slice(&[1, 2, 3]);
        let payload = w.freeze();
        assert!(pool.recycle(payload));
        assert_eq!(pool.idle(), 1);
        let w2 = pool.take(16);
        assert!(w2.capacity() >= 4096, "allocation was not reused");
        assert!(w2.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn shared_payloads_are_not_reclaimed() {
        let pool = BufferPool::new(4);
        let payload = pool.take(64).freeze();
        let clone = payload.clone();
        assert!(!pool.recycle(payload));
        assert_eq!(pool.idle(), 0);
        assert!(pool.recycle(clone));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_capacity_is_bounded() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            // Fresh buffers, not taken from the pool, so the freelist
            // only ever grows — until it hits the bound.
            let _ = pool.recycle(Bytes::from(vec![0u8; 8]));
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn take_honors_min_capacity_over_recycled_size() {
        let pool = BufferPool::new(4);
        assert!(pool.recycle(pool.take(8).freeze()));
        let w = pool.take(1 << 16);
        assert!(w.capacity() >= 1 << 16);
    }
}
