//! The [`Transport`] abstraction: the exact MPI subset PARMONC
//! consumes, as a trait.
//!
//! The runner (rank 0's collector loop, the workers' asynchronous
//! subtotal emission, heartbeats and liveness probing) only ever uses
//! a narrow slice of MPI: buffered point-to-point sends, blocking and
//! non-blocking receives with source/tag matching, `MPI_Iprobe`, and
//! the start-up barrier. [`Transport`] captures that slice so the
//! same collector/worker code runs unchanged over any substrate:
//!
//! * the in-process thread substrate ([`Communicator`], this crate) —
//!   ranks are OS threads exchanging [`Envelope`]s over channels;
//! * the out-of-process socket substrate (`parmonc-ipc`) — ranks are
//!   forked worker processes exchanging the same length-prefixed
//!   envelopes over Unix-domain sockets;
//! * the multi-host TCP substrate (`parmonc-ipc`'s `tcp` module) —
//!   ranks are remote worker processes that dial the collector and
//!   lease a rank via a versioned handshake, with elastic membership.
//!
//! The collectives ([`Transport::barrier`] and friends) are provided
//! methods layered on the point-to-point surface, so an implementor
//! only supplies the eleven required primitives —
//! [`Transport::retire_rank`] is an optional lifecycle hint that only
//! elastic-membership substrates act on.

use std::time::Duration;

use crate::bytes::Bytes;
use crate::collective;
use crate::comm::Communicator;
use crate::envelope::{Envelope, Tag};
use crate::error::MpiError;
use crate::pool::BufferPool;

/// The MPI subset PARMONC consumes, abstracted over the substrate.
///
/// Matching semantics mirror MPI (and [`Communicator`], the reference
/// implementor): receives take optional source and tag filters
/// (`None` = wildcard); messages that arrive but do not match are
/// buffered and delivered to a later matching receive, preserving
/// per-(source, tag) order.
pub trait Transport {
    /// This rank's number (0-based).
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// The send-buffer freelist for this rank: senders take pre-sized
    /// encode buffers from it so steady-state traffic reuses retired
    /// allocations instead of allocating per message.
    fn pool(&self) -> &BufferPool;

    /// Returns a fully consumed payload's allocation to the freelist
    /// (the receiver-side half of the recycling contract). No-op if
    /// other handles to the payload are still alive.
    fn recycle(&self, payload: Bytes);

    /// Sends `payload` to rank `dest` with tag `tag`. Asynchronous and
    /// non-blocking (buffered send).
    ///
    /// # Errors
    ///
    /// [`MpiError::InvalidRank`] for an out-of-range destination, or
    /// [`MpiError::Disconnected`] if the destination is gone.
    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError>;

    /// Zero-copy variant of [`Transport::send`] for payloads already in
    /// [`Bytes`] form.
    ///
    /// # Errors
    ///
    /// Same as [`Transport::send`].
    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError>;

    /// Blocking receive of the next message matching the optional
    /// `source` and `tag` filters.
    ///
    /// # Errors
    ///
    /// [`MpiError::Disconnected`] if all possible senders are gone
    /// while no matching message is buffered.
    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError>;

    /// Blocking receive with a timeout; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`MpiError::Disconnected`] if all senders are gone.
    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError>;

    /// Non-blocking receive: returns a matching message if one is
    /// already available (the `MPI_Iprobe` + `MPI_Recv` pattern the
    /// collector loop uses).
    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope>;

    /// Whether a matching message is available without consuming it.
    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool;

    /// Declares that `rank`'s realization budget has been reassigned
    /// and the rank must never rejoin the world.
    ///
    /// The collector calls this when it declares a worker lost. For
    /// fixed-membership substrates (threads, spawned processes) it is
    /// meaningless and the default is a no-op; an elastic-membership
    /// substrate (TCP) must stop leasing the rank to new joiners, or a
    /// late joiner would redo realizations the collector already dealt
    /// to the survivors and the estimate would double-count them.
    fn retire_rank(&self, rank: usize) {
        let _ = rank;
    }

    /// A serialized image of this transport's membership state, for
    /// persistence alongside a run checkpoint — enough for a restarted
    /// collector to resume the same session (lease table, session
    /// epoch, per-rank dedup state). `None` for fixed-membership
    /// substrates, where membership is rebuilt by construction and
    /// there is nothing to persist; the TCP collector returns its
    /// encoded lease snapshot.
    fn membership_snapshot(&self) -> Option<String> {
        None
    }

    /// Blocks until every rank has entered the barrier.
    ///
    /// # Errors
    ///
    /// Propagates transport errors ([`MpiError::Disconnected`]).
    fn barrier(&mut self) -> Result<(), MpiError>
    where
        Self: Sized,
    {
        collective::barrier(self)
    }

    /// Broadcasts `value` from `root` to all ranks; every rank returns
    /// the broadcast vector.
    ///
    /// # Errors
    ///
    /// Propagates transport errors, and [`MpiError::InvalidRank`] for a
    /// bad root.
    fn broadcast_f64(&mut self, root: usize, value: &[f64]) -> Result<Vec<f64>, MpiError>
    where
        Self: Sized,
    {
        collective::broadcast_f64(self, root, value)
    }

    /// Gathers each rank's `value` vector on `root`; the root returns
    /// `Some(values_by_rank)`, other ranks return `None`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors, and [`MpiError::InvalidRank`] for a
    /// bad root.
    fn gather(&mut self, root: usize, value: &[f64]) -> Result<Option<Vec<Vec<f64>>>, MpiError>
    where
        Self: Sized,
    {
        collective::gather(self, root, value)
    }

    /// Reduces each rank's `value` vector by entrywise summation on
    /// `root`; the root returns `Some(sums)`, other ranks return
    /// `None`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; [`MpiError::MalformedPayload`] if
    /// rank contributions have mismatched lengths.
    fn reduce_sum(&mut self, root: usize, value: &[f64]) -> Result<Option<Vec<f64>>, MpiError>
    where
        Self: Sized,
    {
        collective::reduce_sum(self, root, value)
    }
}

impl Transport for Communicator {
    fn rank(&self) -> usize {
        Communicator::rank(self)
    }

    fn size(&self) -> usize {
        Communicator::size(self)
    }

    fn pool(&self) -> &BufferPool {
        Communicator::pool(self)
    }

    fn recycle(&self, payload: Bytes) {
        Communicator::recycle(self, payload);
    }

    fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        Communicator::send(self, dest, tag, payload)
    }

    fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        Communicator::send_bytes(self, dest, tag, payload)
    }

    fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        Communicator::recv(self, source, tag)
    }

    fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        Communicator::recv_timeout(self, source, tag, timeout)
    }

    fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        Communicator::try_recv(self, source, tag)
    }

    fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        Communicator::iprobe(self, source, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;

    /// The generic surface the runner is written against must work over
    /// a `T: Transport` without naming the concrete type.
    fn ping<T: Transport>(comm: &mut T) -> Result<Vec<u8>, MpiError> {
        if comm.rank() == 0 {
            comm.send(1, Tag(1), b"ping")?;
            let reply = comm.recv(Some(1), Some(Tag(2)))?;
            Ok(reply.payload.to_vec())
        } else {
            let msg = comm.recv(Some(0), Some(Tag(1)))?;
            assert_eq!(&msg.payload[..], b"ping");
            comm.send(0, Tag(2), b"pong")?;
            Ok(Vec::new())
        }
    }

    #[test]
    fn communicator_implements_transport() {
        let results = World::run(2, ping).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), b"pong");
    }

    #[test]
    fn provided_collectives_delegate() {
        let results = World::run(3, |comm| {
            Transport::barrier(comm)?;
            let b = Transport::broadcast_f64(comm, 0, &[2.0 * comm.rank() as f64])?;
            let g = Transport::gather(comm, 0, &[comm.rank() as f64])?;
            let r = Transport::reduce_sum(comm, 0, &[1.0])?;
            Ok((b, g, r))
        })
        .unwrap();
        let (b, g, r) = results[0].as_ref().unwrap();
        assert_eq!(b, &vec![0.0]);
        assert_eq!(g.as_ref().unwrap(), &vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(r.as_ref().unwrap(), &vec![3.0]);
    }
}
