//! An in-process message-passing substrate exposing the MPI subset
//! PARMONC consumes.
//!
//! The paper runs user programs as MPI jobs whose only communication is
//! the PARMONC runtime's own: each worker rank asynchronously sends
//! subtotal sums to rank 0, which probes for pending messages, receives
//! them, and periodically averages (Sections 2.2 and 3.2). This crate
//! reproduces that environment with ranks as OS threads:
//!
//! * [`World::run`] — the `mpirun` analogue: spawn `size` ranks, run the
//!   same closure on each, join, and return every rank's result;
//! * [`Communicator`] — the per-rank handle: [`Communicator::send`],
//!   blocking [`Communicator::recv`], non-blocking
//!   [`Communicator::try_recv`] and [`Communicator::iprobe`] with
//!   source/tag matching and MPI-style out-of-order buffering;
//! * [`collective`] — barrier, broadcast, gather and sum-reduce built on
//!   the point-to-point layer, exactly as a minimal MPI would.
//!
//! Substitution note (DESIGN.md §1): the calibration hint says Rust MPI
//! bindings are thin; an in-process substrate exercises the identical
//! PARMONC code path (asynchronous sends, probe-driven collection, rank
//! 0 as the averager) while keeping the whole test suite runnable on a
//! laptop with deterministic scheduling assumptions.
//!
//! # Example
//!
//! ```
//! use parmonc_mpi::{Tag, World};
//!
//! // Every worker sends its rank to rank 0, which sums them.
//! let results = World::run(4, |comm| {
//!     if comm.rank() == 0 {
//!         let mut total = 0u64;
//!         for _ in 1..comm.size() {
//!             let msg = comm.recv(None, None)?;
//!             total += u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
//!         }
//!         Ok(total)
//!     } else {
//!         comm.send(0, Tag(7), &(comm.rank() as u64).to_le_bytes())?;
//!         Ok(0)
//!     }
//! })
//! .unwrap();
//! assert_eq!(results[0], Ok(1 + 2 + 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bytes;
pub mod collective;
pub mod comm;
pub mod envelope;
pub mod error;
pub mod plan;
pub mod pool;
pub mod transport;

pub use bytes::{Bytes, BytesMut};
pub use comm::{Communicator, World};
pub use envelope::{Envelope, Tag};
pub use error::MpiError;
pub use plan::{CollectionPlan, Topology};
pub use pool::BufferPool;
pub use transport::Transport;
