//! A minimal owned-buffer type in the style of the `bytes` crate.
//!
//! The substrate moves *serialized* payloads between ranks, and many
//! ranks may hold views of the same broadcast payload, so the buffer
//! must be cheaply cloneable. [`Bytes`] is an `Arc<Vec<u8>>` plus a
//! view window: clones and [`Bytes::slice`] are O(1), and the
//! little-endian accessors consume from the front the way the envelope
//! codec reads. [`BytesMut`] is the append-only builder that freezes
//! into a [`Bytes`]. Only the surface the workspace actually uses is
//! implemented.
//!
//! The `Arc<Vec<u8>>` backing (rather than `Arc<[u8]>`) matters on the
//! hot path: `Vec<u8> → Arc<[u8]>` always copies the contents into a
//! fresh allocation, so freezing an encoded payload used to cost a
//! second full copy. Freezing into `Arc<Vec<u8>>` just moves the Vec,
//! and [`Bytes::try_reclaim`] recovers the allocation for reuse once
//! the last handle drops its claim.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (a shared window into an
/// `Arc<Vec<u8>>`).
///
/// # Examples
///
/// ```
/// use parmonc_mpi::bytes::Bytes;
///
/// let b = Bytes::from(vec![1u8, 2, 3, 4]);
/// let head = b.slice(..2);
/// assert_eq!(&head[..], &[1, 2]);
/// assert_eq!(b.to_vec(), vec![1, 2, 3, 4]); // original unaffected
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// Wraps a static slice (copies it; this shim does not borrow).
    #[must_use]
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    #[must_use]
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// The visible bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length of the visible window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes not yet consumed by the `get_*` accessors (same as
    /// [`Bytes::len`]; named for `bytes::Buf` compatibility).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// An O(1) sub-window. `range` is relative to the current window.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the visible window into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the backing allocation if this is the last handle to
    /// it, for reuse through a send-buffer freelist. Returns `None`
    /// (dropping `self` normally) while other clones or slices are
    /// still alive. The returned `Vec` is the *whole* backing buffer,
    /// cleared, regardless of the window this handle viewed.
    #[must_use]
    pub fn try_reclaim(self) -> Option<Vec<u8>> {
        let mut v = Arc::try_unwrap(self.data).ok()?;
        v.clear();
        Some(v)
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }

    /// Consumes and returns a little-endian `u64` from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain (callers check
    /// [`Bytes::remaining`] first, as with `bytes::Buf`).
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Consumes and returns a little-endian `f64` from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Wraps the `Vec` without copying its contents.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// An append-only byte builder that freezes into [`Bytes`].
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// A builder reusing a recycled allocation (cleared, capacity
    /// kept) — the freelist path of
    /// [`BufferPool`](crate::pool::BufferPool).
    #[must_use]
    pub fn from_vec(mut v: Vec<u8>) -> Self {
        v.clear();
        Self { buf: v }
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Spare capacity already reserved beyond the current length.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` (raw bits, so NaNs round-trip).
    pub fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Finalizes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_scalars() {
        let mut w = BytesMut::with_capacity(24);
        w.put_u64_le(7);
        w.put_f64_le(-2.5);
        w.put_f64_le(f64::NAN);
        assert_eq!(w.len(), 24);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 24);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_f64_le(), -2.5);
        assert!(b.get_f64_le().is_nan());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_are_windows_not_copies() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let mid = b.slice(2..8);
        assert_eq!(&mid[..], &[2, 3, 4, 5, 6, 7]);
        let tail = mid.slice(4..);
        assert_eq!(tail.to_vec(), vec![6, 7]);
        assert_eq!(b.len(), 10);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn oversized_slice_panics() {
        let _ = Bytes::from(vec![1, 2]).slice(..5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        let _ = b.get_u64_le();
    }

    #[test]
    fn try_reclaim_recovers_sole_allocation() {
        let b = Bytes::from(Vec::with_capacity(64));
        let v = b.try_reclaim().expect("sole handle");
        assert!(v.is_empty());
        assert!(v.capacity() >= 64);
    }

    #[test]
    fn try_reclaim_refuses_while_shared() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let view = b.slice(1..);
        assert!(b.try_reclaim().is_none(), "slice still alive");
        assert_eq!(view.to_vec(), vec![2, 3]);
        let v = view.try_reclaim().expect("last handle");
        // The whole backing buffer comes back, cleared.
        assert!(v.is_empty());
        assert!(v.capacity() >= 3);
    }

    #[test]
    fn from_vec_builder_reuses_allocation() {
        let recycled = Vec::with_capacity(128);
        let mut w = BytesMut::from_vec(recycled);
        assert!(w.is_empty());
        assert!(w.capacity() >= 128);
        w.put_u64_le(5);
        assert_eq!(w.freeze().to_vec()[0], 5);
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![9, 1, 2, 3]).slice(1..);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
