//! A minimal owned-buffer type in the style of the `bytes` crate.
//!
//! The substrate moves *serialized* payloads between ranks, and many
//! ranks may hold views of the same broadcast payload, so the buffer
//! must be cheaply cloneable. [`Bytes`] is an `Arc<[u8]>` plus a view
//! window: clones and [`Bytes::slice`] are O(1), and the little-endian
//! accessors consume from the front the way the envelope codec reads.
//! [`BytesMut`] is the append-only builder that freezes into a
//! [`Bytes`]. Only the surface the workspace actually uses is
//! implemented.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (a shared window into an
/// `Arc<[u8]>`).
///
/// # Examples
///
/// ```
/// use parmonc_mpi::bytes::Bytes;
///
/// let b = Bytes::from(vec![1u8, 2, 3, 4]);
/// let head = b.slice(..2);
/// assert_eq!(&head[..], &[1, 2]);
/// assert_eq!(b.to_vec(), vec![1, 2, 3, 4]); // original unaffected
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// Wraps a static slice (copies it; this shim does not borrow).
    #[must_use]
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    #[must_use]
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// The visible bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length of the visible window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes not yet consumed by the `get_*` accessors (same as
    /// [`Bytes::len`]; named for `bytes::Buf` compatibility).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// An O(1) sub-window. `range` is relative to the current window.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the visible window into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let out = &self.data[self.start..self.start + n];
        self.start += n;
        out
    }

    /// Consumes and returns a little-endian `u64` from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain (callers check
    /// [`Bytes::remaining`] first, as with `bytes::Buf`).
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Consumes and returns a little-endian `f64` from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// An append-only byte builder that freezes into [`Bytes`].
#[derive(Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` (raw bits, so NaNs round-trip).
    pub fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Finalizes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_scalars() {
        let mut w = BytesMut::with_capacity(24);
        w.put_u64_le(7);
        w.put_f64_le(-2.5);
        w.put_f64_le(f64::NAN);
        assert_eq!(w.len(), 24);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 24);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_f64_le(), -2.5);
        assert!(b.get_f64_le().is_nan());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_are_windows_not_copies() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let mid = b.slice(2..8);
        assert_eq!(&mid[..], &[2, 3, 4, 5, 6, 7]);
        let tail = mid.slice(4..);
        assert_eq!(tail.to_vec(), vec![6, 7]);
        assert_eq!(b.len(), 10);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn oversized_slice_panics() {
        let _ = Bytes::from(vec![1, 2]).slice(..5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        let _ = b.get_u64_le();
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![9, 1, 2, 3]).slice(1..);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
