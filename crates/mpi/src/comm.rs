//! The world launcher and per-rank communicator.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use parmonc_faults::{FaultHandle, FaultKind, SendAction};
use parmonc_obs::{EventKind, Monitor};

use crate::bytes::Bytes;
use crate::envelope::{Envelope, Tag};
use crate::error::MpiError;
use crate::pool::BufferPool;

/// A message the fault plane is holding back: it leaves the sender
/// only after `remaining` further sends from the same rank.
#[derive(Debug)]
struct DelayedSend {
    remaining: u32,
    dest: usize,
    tag: Tag,
    payload: Bytes,
}

/// Per-receiver channel statistics for monitored worlds: how many
/// messages sit undelivered in each rank's inbox, and the largest such
/// backlog ever seen. Only allocated when a [`Monitor`] is attached, so
/// unmonitored worlds pay nothing.
#[derive(Debug)]
struct ChannelStats {
    /// Messages enqueued for rank `i` and not yet pulled by it.
    depths: Vec<AtomicUsize>,
    /// High-water mark of `depths[i]`.
    high_water: Vec<AtomicU64>,
}

impl ChannelStats {
    fn new(size: usize) -> Self {
        Self {
            depths: (0..size).map(|_| AtomicUsize::new(0)).collect(),
            high_water: (0..size).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The per-rank handle: knows its rank, the world size, and how to
/// reach every other rank.
///
/// Matching semantics mirror MPI: [`Communicator::recv`] takes optional
/// source and tag filters; messages that arrive but do not match are
/// buffered and delivered to a later matching receive, preserving
/// per-(source, tag) order.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    inbox: Receiver<Envelope>,
    /// Messages received from the channel but not yet matched.
    pending: VecDeque<Envelope>,
    /// Event sink for monitored worlds (disabled = one dead branch per
    /// operation).
    monitor: Monitor,
    /// Queue-depth counters, present only in monitored worlds.
    stats: Option<Arc<ChannelStats>>,
    /// The deterministic fault plane (disabled = one dead branch per
    /// send).
    faults: FaultHandle,
    /// Messages the fault plane is holding back. Only touched when the
    /// fault plane is enabled; flushed on [`Drop`] so a held message is
    /// late, never lost (unless scripted as a drop).
    delayed: RefCell<Vec<DelayedSend>>,
    /// Send-buffer freelist shared by all ranks of this world: senders
    /// take encode buffers from it, receivers recycle decoded payloads
    /// into it.
    pool: Arc<BufferPool>,
}

impl Communicator {
    /// This rank's number (0-based).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[must_use]
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// The world-shared send-buffer freelist. Senders take pre-sized
    /// encode buffers from it so steady-state traffic reuses retired
    /// allocations instead of allocating per message.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Returns a fully consumed payload's allocation to the world's
    /// freelist (the receiver-side half of the recycling contract).
    /// No-op if other handles to the payload are still alive.
    pub fn recycle(&self, payload: Bytes) {
        let _ = self.pool.recycle(payload);
    }

    /// Bumps the destination's queue-depth counter in a monitored
    /// world, returning the new depth. Must run *before* the message is
    /// enqueued — the receiver decrements on delivery, and a message
    /// counted after it was already delivered would underflow the
    /// counter. Balanced by [`Communicator::undo_enqueue`] when the
    /// send fails.
    fn note_enqueue(&self, dest: usize) -> Option<u64> {
        self.stats
            .as_ref()
            .map(|stats| stats.depths[dest].fetch_add(1, Ordering::Relaxed) as u64 + 1)
    }

    /// Reverts [`Communicator::note_enqueue`] after a failed send.
    fn undo_enqueue(&self, dest: usize) {
        if let Some(stats) = &self.stats {
            stats.depths[dest].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records a successful send in a monitored world: emits
    /// `message_sent`, plus `queue_high_water` when the backlog
    /// (`depth`, from [`Communicator::note_enqueue`]) reaches a new
    /// maximum.
    fn note_send(&self, dest: usize, tag: Tag, bytes: usize, depth: u64) {
        if let Some(stats) = &self.stats {
            self.monitor.emit(
                Some(self.rank),
                EventKind::MessageSent {
                    dest,
                    tag: tag.0,
                    bytes: bytes as u64,
                },
            );
            let prev = stats.high_water[dest].fetch_max(depth, Ordering::Relaxed);
            if depth > prev {
                self.monitor
                    .emit(Some(dest), EventKind::QueueHighWater { depth });
            }
        }
    }

    /// Records a message leaving this rank's channel (it is now owned by
    /// the receiving rank, possibly in its pending buffer).
    fn note_delivery(&self, env: &Envelope) {
        if let Some(stats) = &self.stats {
            let depth = stats.depths[self.rank]
                .fetch_sub(1, Ordering::Relaxed)
                .saturating_sub(1) as u64;
            self.monitor.emit(
                Some(self.rank),
                EventKind::MessageReceived {
                    source: env.source,
                    tag: env.tag.0,
                    bytes: env.payload.len() as u64,
                    queue_depth: depth,
                },
            );
        }
    }

    /// Sends `payload` to rank `dest` with tag `tag`. Asynchronous and
    /// non-blocking (buffered send): the call returns once the message
    /// is enqueued.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::InvalidRank`] for an out-of-range
    /// destination, or [`MpiError::Disconnected`] if the destination has
    /// already been torn down.
    pub fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> Result<(), MpiError> {
        self.send_bytes(dest, tag, Bytes::copy_from_slice(payload))
    }

    /// Zero-copy variant of [`Communicator::send`] for payloads already
    /// in [`Bytes`] form.
    ///
    /// When a fault plane is attached ([`World::communicators_faulted`])
    /// the message may be scripted to be dropped, duplicated or held
    /// back; each injected fault is reported as a `fault_injected`
    /// monitor event. With the disabled plane (the default everywhere
    /// else) this is a single extra branch.
    ///
    /// # Errors
    ///
    /// Same as [`Communicator::send`].
    pub fn send_bytes(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        if dest >= self.size() {
            return Err(MpiError::InvalidRank {
                rank: dest,
                size: self.size(),
            });
        }
        if !self.faults.is_enabled() {
            return self.send_now(dest, tag, payload);
        }
        // Every send ages the held-back messages; due ones leave first
        // so a delayed message is overtaken by exactly `hold_sends`
        // later sends.
        self.flush_delayed(false)?;
        let (seq, action) = self.faults.on_send(self.rank, dest, tag.0);
        match action {
            SendAction::Deliver => self.send_now(dest, tag, payload),
            SendAction::Drop => {
                self.note_fault(FaultKind::MessageDrop, seq);
                Ok(())
            }
            SendAction::Duplicate => {
                self.note_fault(FaultKind::MessageDuplicate, seq);
                self.send_now(dest, tag, payload.clone())?;
                self.send_now(dest, tag, payload)
            }
            SendAction::Delay { hold_sends } => {
                self.note_fault(FaultKind::MessageDelay, seq);
                if hold_sends == 0 {
                    return self.send_now(dest, tag, payload);
                }
                self.delayed.borrow_mut().push(DelayedSend {
                    remaining: hold_sends,
                    dest,
                    tag,
                    payload,
                });
                Ok(())
            }
        }
    }

    /// The unfaulted send path: enqueue for `dest`, with monitored
    /// queue-depth accounting. `dest` has already been validated.
    fn send_now(&self, dest: usize, tag: Tag, payload: Bytes) -> Result<(), MpiError> {
        let sender = &self.senders[dest];
        let bytes = payload.len();
        // Count the message before it is enqueued: once it is in the
        // channel the receiver may pull it (and decrement) at any time.
        let depth = self.note_enqueue(dest);
        match sender.send(Envelope {
            source: self.rank,
            tag,
            payload,
        }) {
            Ok(()) => {
                self.note_send(dest, tag, bytes, depth.unwrap_or(0));
                Ok(())
            }
            Err(_) => {
                self.undo_enqueue(dest);
                Err(MpiError::Disconnected)
            }
        }
    }

    /// Ages held-back messages by one send and delivers the due ones
    /// (or, with `force`, everything — the [`Drop`] path, so a delayed
    /// message is late, never lost).
    fn flush_delayed(&self, force: bool) -> Result<(), MpiError> {
        if self.delayed.borrow().is_empty() {
            return Ok(());
        }
        let due: Vec<DelayedSend> = {
            let mut held = self.delayed.borrow_mut();
            if !force {
                for entry in held.iter_mut() {
                    entry.remaining = entry.remaining.saturating_sub(1);
                }
            }
            let mut due = Vec::new();
            let mut i = 0;
            while i < held.len() {
                if force || held[i].remaining == 0 {
                    due.push(held.remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for entry in due {
            self.send_now(entry.dest, entry.tag, entry.payload)?;
        }
        Ok(())
    }

    /// Emits a `fault_injected` monitor event for a message fault.
    fn note_fault(&self, kind: FaultKind, seq: u64) {
        self.monitor.emit(
            Some(self.rank),
            EventKind::FaultInjected {
                fault: kind.as_str().to_string(),
                detail: Some(seq),
            },
        );
    }

    fn matches(env: &Envelope, source: Option<usize>, tag: Option<Tag>) -> bool {
        source.is_none_or(|s| env.source == s) && tag.is_none_or(|t| env.tag == t)
    }

    fn take_pending(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        let idx = self
            .pending
            .iter()
            .position(|e| Self::matches(e, source, tag))?;
        self.pending.remove(idx)
    }

    /// Blocking receive of the next message matching the optional
    /// `source` and `tag` filters (`None` = wildcard, MPI's
    /// `MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::Disconnected`] if all possible senders have
    /// been dropped while no matching message is buffered.
    pub fn recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Result<Envelope, MpiError> {
        if let Some(env) = self.take_pending(source, tag) {
            return Ok(env);
        }
        loop {
            let env = self.inbox.recv().map_err(|_| MpiError::Disconnected)?;
            self.note_delivery(&env);
            if Self::matches(&env, source, tag) {
                return Ok(env);
            }
            self.pending.push_back(env);
        }
    }

    /// Blocking receive with a timeout; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::Disconnected`] if all senders are gone.
    pub fn recv_timeout(
        &mut self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, MpiError> {
        if let Some(env) = self.take_pending(source, tag) {
            return Ok(Some(env));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.inbox.recv_timeout(remaining) {
                Ok(env) => {
                    self.note_delivery(&env);
                    if Self::matches(&env, source, tag) {
                        return Ok(Some(env));
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(MpiError::Disconnected),
            }
        }
    }

    /// Non-blocking receive: returns a matching message if one is
    /// already available (MPI's `MPI_Iprobe` + `MPI_Recv` pattern the
    /// collector loop uses).
    pub fn try_recv(&mut self, source: Option<usize>, tag: Option<Tag>) -> Option<Envelope> {
        if let Some(env) = self.take_pending(source, tag) {
            return Some(env);
        }
        loop {
            match self.inbox.try_recv() {
                Ok(env) => {
                    self.note_delivery(&env);
                    if Self::matches(&env, source, tag) {
                        return Some(env);
                    }
                    self.pending.push_back(env);
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// Whether a matching message is available without consuming it.
    ///
    /// Held-back (delayed) messages are invisible to the probe until
    /// the fault plane releases them — exactly the observable behavior
    /// of a message still in flight.
    pub fn iprobe(&mut self, source: Option<usize>, tag: Option<Tag>) -> bool {
        if self.pending.iter().any(|e| Self::matches(e, source, tag)) {
            return true;
        }
        // Drain whatever is in the channel into the pending buffer so
        // the probe sees it.
        while let Ok(env) = self.inbox.try_recv() {
            self.note_delivery(&env);
            self.pending.push_back(env);
        }
        self.pending.iter().any(|e| Self::matches(e, source, tag))
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // A rank tearing down force-flushes anything the fault plane
        // was holding, so "delayed" can never silently become "lost".
        // Errors are ignored: the receiver may already be gone.
        let _ = self.flush_delayed(true);
    }
}

/// The world launcher: the `mpirun` analogue.
#[derive(Debug)]
pub struct World;

impl World {
    /// Builds the communicators for a world of `size` ranks without
    /// spawning threads (used by the runner when it wants to drive the
    /// ranks itself).
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::EmptyWorld`] if `size == 0`.
    pub fn communicators(size: usize) -> Result<Vec<Communicator>, MpiError> {
        Self::communicators_monitored(size, Monitor::disabled())
    }

    /// [`World::communicators`] with a [`Monitor`] attached: every
    /// communicator reports `message_sent` / `message_received` /
    /// `queue_high_water` events through it. With a disabled monitor
    /// this is exactly [`World::communicators`] — the queue-depth
    /// counters are not even allocated.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::EmptyWorld`] if `size == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use parmonc_mpi::{Tag, World};
    /// use parmonc_obs::{MemorySink, Monitor};
    /// use std::sync::Arc;
    ///
    /// let sink = Arc::new(MemorySink::new());
    /// let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
    /// let mut comms = World::communicators_monitored(2, monitor).unwrap();
    /// comms[1].send(0, Tag(1), b"subtotal").unwrap();
    /// comms[0].recv(None, None).unwrap();
    /// let kinds: Vec<_> = sink.snapshot().iter().map(|e| e.kind.name().to_string()).collect();
    /// assert_eq!(kinds, ["message_sent", "queue_high_water", "message_received"]);
    /// ```
    pub fn communicators_monitored(
        size: usize,
        monitor: Monitor,
    ) -> Result<Vec<Communicator>, MpiError> {
        Self::communicators_faulted(size, monitor, FaultHandle::disabled())
    }

    /// [`World::communicators_monitored`] with a deterministic fault
    /// plane attached: every send consults the shared [`FaultHandle`],
    /// which may drop, duplicate or delay it. With the disabled handle
    /// this is exactly [`World::communicators_monitored`].
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::EmptyWorld`] if `size == 0`.
    pub fn communicators_faulted(
        size: usize,
        monitor: Monitor,
        faults: FaultHandle,
    ) -> Result<Vec<Communicator>, MpiError> {
        if size == 0 {
            return Err(MpiError::EmptyWorld);
        }
        let mut senders = Vec::with_capacity(size);
        let mut inboxes = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel();
            senders.push(tx);
            inboxes.push(rx);
        }
        let senders = Arc::new(senders);
        let stats = monitor
            .is_enabled()
            .then(|| Arc::new(ChannelStats::new(size)));
        let pool = Arc::new(BufferPool::default());
        Ok(inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Communicator {
                rank,
                senders: Arc::clone(&senders),
                inbox,
                pending: VecDeque::new(),
                monitor: monitor.clone(),
                stats: stats.clone(),
                faults: faults.clone(),
                delayed: RefCell::new(Vec::new()),
                pool: Arc::clone(&pool),
            })
            .collect())
    }

    /// Spawns `size` ranks, runs `f` on each with its communicator, and
    /// returns every rank's result, index = rank.
    ///
    /// The closure returns `Result<T, MpiError>` — the typical failure
    /// is a blocked `recv` discovering its peers exited.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::EmptyWorld`] if `size == 0`, or
    /// [`MpiError::RankPanicked`] if any rank's closure panicked
    /// (results from non-panicking ranks are discarded in that case).
    pub fn run<T, F>(size: usize, f: F) -> Result<Vec<Result<T, MpiError>>, MpiError>
    where
        T: Send + 'static,
        F: Fn(&mut Communicator) -> Result<T, MpiError> + Send + Sync + 'static,
    {
        let comms = Self::communicators(size)?;
        let f = Arc::new(f);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                let f = Arc::clone(&f);
                std::thread::Builder::new()
                    .name(format!("rank-{}", comm.rank()))
                    .spawn(move || f(&mut comm))
                    .expect("spawning a rank thread")
            })
            .collect();

        let mut results = Vec::with_capacity(size);
        let mut panic: Option<MpiError> = None;
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(res) => results.push(res),
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    panic.get_or_insert(MpiError::RankPanicked { rank, message });
                    results.push(Err(MpiError::Disconnected));
                }
            }
        }
        if let Some(p) = panic {
            return Err(p);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_obs::MemorySink;

    #[test]
    fn world_rejects_zero_ranks() {
        assert!(matches!(World::communicators(0), Err(MpiError::EmptyWorld)));
    }

    #[test]
    fn rank_and_size() {
        let comms = World::communicators(3).unwrap();
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.size(), 3);
        }
    }

    #[test]
    fn ping_pong() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), b"ping")?;
                let reply = comm.recv(Some(1), Some(Tag(2)))?;
                Ok(reply.payload.to_vec())
            } else {
                let msg = comm.recv(Some(0), Some(Tag(1)))?;
                assert_eq!(&msg.payload[..], b"ping");
                comm.send(0, Tag(2), b"pong")?;
                Ok(Vec::new())
            }
        })
        .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), b"pong");
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let mut comms = World::communicators(2).unwrap();
        let c = &mut comms[0];
        assert!(matches!(
            c.send(5, Tag(0), b""),
            Err(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn self_send_and_receive() {
        let mut comms = World::communicators(1).unwrap();
        let c = &mut comms[0];
        c.send(0, Tag(9), b"hello").unwrap();
        let env = c.recv(Some(0), Some(Tag(9))).unwrap();
        assert_eq!(&env.payload[..], b"hello");
    }

    #[test]
    fn tag_matching_buffers_non_matching_messages() {
        let mut comms = World::communicators(1).unwrap();
        let c = &mut comms[0];
        c.send(0, Tag(1), b"first").unwrap();
        c.send(0, Tag(2), b"second").unwrap();
        // Ask for tag 2 first: tag-1 message must be buffered, not lost.
        let env2 = c.recv(None, Some(Tag(2))).unwrap();
        assert_eq!(&env2.payload[..], b"second");
        let env1 = c.recv(None, Some(Tag(1))).unwrap();
        assert_eq!(&env1.payload[..], b"first");
    }

    #[test]
    fn per_source_order_is_preserved() {
        let mut comms = World::communicators(1).unwrap();
        let c = &mut comms[0];
        for i in 0..10u8 {
            c.send(0, Tag(0), &[i]).unwrap();
        }
        for i in 0..10u8 {
            let env = c.recv(Some(0), Some(Tag(0))).unwrap();
            assert_eq!(env.payload[0], i);
        }
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let mut comms = World::communicators(2).unwrap();
        assert!(comms[0].try_recv(None, None).is_none());
    }

    #[test]
    fn iprobe_sees_waiting_message_without_consuming() {
        let mut comms = World::communicators(1).unwrap();
        let c = &mut comms[0];
        assert!(!c.iprobe(None, None));
        c.send(0, Tag(3), b"x").unwrap();
        assert!(c.iprobe(None, Some(Tag(3))));
        assert!(c.iprobe(None, Some(Tag(3)))); // still there
        let env = c.try_recv(None, Some(Tag(3))).unwrap();
        assert_eq!(&env.payload[..], b"x");
        assert!(!c.iprobe(None, None));
    }

    #[test]
    fn recv_timeout_times_out() {
        let mut comms = World::communicators(2).unwrap();
        let got = comms[0]
            .recv_timeout(Some(1), None, Duration::from_millis(20))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn recv_timeout_delivers_buffered_message() {
        let mut comms = World::communicators(1).unwrap();
        let c = &mut comms[0];
        c.send(0, Tag(1), b"now").unwrap();
        let got = c
            .recv_timeout(None, Some(Tag(1)), Duration::from_millis(1))
            .unwrap();
        assert!(got.is_some());
    }

    #[test]
    fn many_to_one_gather_pattern() {
        // The PARMONC collector pattern: rank 0 receives from everyone
        // in arrival order with wildcard matching.
        let results = World::run(8, |comm| {
            if comm.rank() == 0 {
                let mut total = 0u64;
                for _ in 1..comm.size() {
                    let env = comm.recv(None, None)?;
                    total += u64::from_le_bytes(env.payload[..8].try_into().unwrap());
                }
                Ok(total)
            } else {
                comm.send(0, Tag(0), &(comm.rank() as u64).to_le_bytes())?;
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(*results[0].as_ref().unwrap(), (1..8).sum::<u64>());
    }

    #[test]
    fn panicking_rank_is_reported() {
        let err = World::run(2, |comm| -> Result<(), MpiError> {
            if comm.rank() == 1 {
                panic!("worker exploded");
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            MpiError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("exploded"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stress_many_ranks_many_messages() {
        let results = World::run(16, |comm| {
            if comm.rank() == 0 {
                let mut sum = 0u64;
                let expected = (comm.size() - 1) * 50;
                for _ in 0..expected {
                    let env = comm.recv(None, None)?;
                    sum += u64::from_le_bytes(env.payload[..8].try_into().unwrap());
                }
                Ok(sum)
            } else {
                for i in 0..50u64 {
                    comm.send(0, Tag(0), &i.to_le_bytes())?;
                }
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(*results[0].as_ref().unwrap(), 15 * (0..50).sum::<u64>());
    }

    #[test]
    fn monitored_world_counts_queue_depths() {
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let mut comms = World::communicators_monitored(2, monitor).unwrap();
        let (left, right) = comms.split_at_mut(1);
        let receiver = &mut left[0];
        let sender = &mut right[0];
        for i in 0..4u8 {
            sender.send(0, Tag(1), &[i]).unwrap();
        }
        for _ in 0..4 {
            receiver.recv(None, None).unwrap();
        }
        let events = sink.snapshot();
        let sent = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MessageSent { .. }))
            .count();
        let received: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MessageReceived { queue_depth, .. } => Some(queue_depth),
                _ => None,
            })
            .collect();
        let high_water: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::QueueHighWater { depth } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(sent, 4);
        // Backlog drains 3, 2, 1, 0 as the four messages are delivered.
        assert_eq!(received, vec![3, 2, 1, 0]);
        // Each send deepened the backlog, so each set a new high water.
        assert_eq!(high_water, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unmonitored_world_allocates_no_stats() {
        let comms = World::communicators(2).unwrap();
        assert!(comms[0].stats.is_none());
        assert!(!comms[0].monitor.is_enabled());
        assert!(!comms[0].faults.is_enabled());
    }

    #[test]
    fn faulted_world_drops_scripted_messages() {
        use parmonc_faults::FaultPlan;
        let faults = FaultPlan::new(1).drop_message(1, 0, 7, 1).build();
        let mut comms =
            World::communicators_faulted(2, Monitor::disabled(), faults.clone()).unwrap();
        let (left, right) = comms.split_at_mut(1);
        for i in 0..3u8 {
            right[0].send(0, Tag(7), &[i]).unwrap();
        }
        // Sequence 1 (payload [1]) was dropped; 0 and 2 arrive in order.
        assert_eq!(left[0].try_recv(None, None).unwrap().payload[0], 0);
        assert_eq!(left[0].try_recv(None, None).unwrap().payload[0], 2);
        assert!(left[0].try_recv(None, None).is_none());
        assert_eq!(faults.records().len(), 1);
    }

    #[test]
    fn faulted_world_duplicates_scripted_messages() {
        use parmonc_faults::FaultPlan;
        let faults = FaultPlan::new(1).duplicate_message(1, 0, 1, 0).build();
        let mut comms = World::communicators_faulted(2, Monitor::disabled(), faults).unwrap();
        let (left, right) = comms.split_at_mut(1);
        right[0].send(0, Tag(1), b"twice").unwrap();
        assert_eq!(&left[0].try_recv(None, None).unwrap().payload[..], b"twice");
        assert_eq!(&left[0].try_recv(None, None).unwrap().payload[..], b"twice");
        assert!(left[0].try_recv(None, None).is_none());
    }

    #[test]
    fn delayed_message_is_overtaken_then_delivered() {
        use parmonc_faults::FaultPlan;
        let faults = FaultPlan::new(1).delay_message(1, 0, 1, 0, 2).build();
        let mut comms = World::communicators_faulted(2, Monitor::disabled(), faults).unwrap();
        let (left, right) = comms.split_at_mut(1);
        right[0].send(0, Tag(1), b"early").unwrap(); // held
        assert!(left[0].try_recv(None, None).is_none());
        right[0].send(0, Tag(1), b"mid").unwrap(); // ages held to 1
        right[0].send(0, Tag(1), b"late").unwrap(); // releases held first
        let order: Vec<Vec<u8>> = (0..3)
            .map(|_| left[0].try_recv(None, None).unwrap().payload.to_vec())
            .collect();
        assert_eq!(
            order,
            vec![b"mid".to_vec(), b"early".to_vec(), b"late".to_vec()]
        );
    }

    #[test]
    fn dropping_a_communicator_flushes_held_messages() {
        use parmonc_faults::FaultPlan;
        let faults = FaultPlan::new(1).delay_message(1, 0, 1, 0, 100).build();
        let mut comms = World::communicators_faulted(2, Monitor::disabled(), faults).unwrap();
        let sender = comms.pop().unwrap();
        sender.send(0, Tag(1), b"held").unwrap();
        assert!(comms[0].try_recv(None, None).is_none());
        drop(sender); // force-flush: late, never lost
        assert_eq!(&comms[0].try_recv(None, None).unwrap().payload[..], b"held");
    }

    #[test]
    fn message_faults_emit_monitor_events() {
        use parmonc_faults::FaultPlan;
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let faults = FaultPlan::new(1).drop_message(1, 0, 1, 0).build();
        let comms = World::communicators_faulted(2, monitor, faults).unwrap();
        comms[1].send(0, Tag(1), b"gone").unwrap();
        let events = sink.snapshot();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::FaultInjected { fault, detail: Some(0) } if fault == "message_drop"
        )));
        // A dropped message produces no message_sent event.
        assert!(!events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MessageSent { .. })));
    }

    #[test]
    fn faulted_send_still_validates_the_destination() {
        use parmonc_faults::FaultPlan;
        let faults = FaultPlan::new(1).drop_fraction(1.0).build();
        let comms = World::communicators_faulted(2, Monitor::disabled(), faults).unwrap();
        assert!(matches!(
            comms[0].send(5, Tag(0), b""),
            Err(MpiError::InvalidRank { rank: 5, size: 2 })
        ));
    }
}
