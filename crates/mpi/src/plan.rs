//! Collection topology: who sends to whom when subtotals flow home.
//!
//! PARMONC's original shape is a star — every worker reports straight
//! to the collector — which puts the whole per-message receive cost on
//! one rank. A [`CollectionPlan`] generalizes the shape: it assigns
//! every rank a parent (and, symmetrically, a set of children) so the
//! same replace-then-sum collection can run over a k-ary reduction
//! tree, with intermediate *relay* ranks coalescing their children's
//! envelopes before forwarding upstream. The root then handles
//! O(arity) coalesced frames per pass instead of O(m) messages.
//!
//! The plan is pure arithmetic over `(topology, root, size)`: every
//! rank computes the identical plan locally, so nothing about the
//! shape has to travel beyond those three values.
//!
//! Merging stays bit-identical across shapes because relays never
//! pre-fold floating-point state: they keep the *latest raw payload
//! per source rank* and forward those bytes verbatim. The root applies
//! the same rank-ordered fold it always did, so `Star` and
//! `Tree { .. }` produce byte-for-byte identical estimates.

/// The shape of the collection plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Every non-root rank reports directly to the root — PARMONC's
    /// original shape, and the default.
    #[default]
    Star,
    /// A k-ary reduction tree: non-root ranks are arranged heap-style
    /// under the root, and interior ranks relay their children's
    /// subtotal envelopes upstream in coalesced batches.
    Tree {
        /// Children per interior rank; must be at least 1. `Tree` with
        /// a huge arity degenerates to `Star`.
        arity: usize,
    },
}

impl Topology {
    /// A stable one-byte tag for configuration digests: the shape must
    /// be part of the run digest, or star and tree workers could join
    /// the same world and disagree about who their parent is.
    #[must_use]
    pub fn digest_tag(self) -> u8 {
        match self {
            Self::Star => 0,
            Self::Tree { .. } => 1,
        }
    }

    /// The arity the digest should mix in (0 for star).
    #[must_use]
    pub fn digest_arity(self) -> u64 {
        match self {
            Self::Star => 0,
            Self::Tree { arity } => arity as u64,
        }
    }
}

/// Parent/children assignment for every rank of a world, derived from
/// a [`Topology`], an explicit root, and the world size.
///
/// Ranks are mapped onto heap positions with the root at position 0
/// and all other ranks in ascending order, so the plan supports any
/// root — the collectives in [`crate::collective`] no longer assume
/// rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionPlan {
    topology: Topology,
    root: usize,
    size: usize,
}

impl CollectionPlan {
    /// Builds the plan.
    ///
    /// # Panics
    ///
    /// If `root >= size`, if `size` is 0, or if a tree arity is 0 —
    /// all three are configuration bugs, not runtime conditions.
    #[must_use]
    pub fn new(topology: Topology, root: usize, size: usize) -> Self {
        assert!(size > 0, "a collection plan needs at least one rank");
        assert!(root < size, "root {root} outside world of size {size}");
        if let Topology::Tree { arity } = topology {
            assert!(arity >= 1, "tree arity must be at least 1");
        }
        Self {
            topology,
            root,
            size,
        }
    }

    /// The shape this plan was built from.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The rank every subtotal ultimately folds into.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// World size, root included.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Heap position of a rank: root is position 0, the remaining
    /// ranks keep their relative order at positions 1..size.
    fn rank_to_pos(&self, rank: usize) -> usize {
        if rank == self.root {
            0
        } else if rank < self.root {
            rank + 1
        } else {
            rank
        }
    }

    /// Inverse of [`Self::rank_to_pos`].
    fn pos_to_rank(&self, pos: usize) -> usize {
        if pos == 0 {
            self.root
        } else if pos - 1 < self.root {
            pos - 1
        } else {
            pos
        }
    }

    /// Position of a rank's parent position under the topology.
    fn parent_pos(&self, pos: usize) -> usize {
        match self.topology {
            Topology::Star => 0,
            Topology::Tree { arity } => (pos - 1) / arity,
        }
    }

    /// The rank this rank reports to; `None` for the root.
    #[must_use]
    pub fn parent(&self, rank: usize) -> Option<usize> {
        assert!(rank < self.size, "rank {rank} outside world {}", self.size);
        if rank == self.root {
            return None;
        }
        Some(self.pos_to_rank(self.parent_pos(self.rank_to_pos(rank))))
    }

    /// The ranks that report to this rank, in ascending rank order.
    #[must_use]
    pub fn children(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size, "rank {rank} outside world {}", self.size);
        let pos = self.rank_to_pos(rank);
        match self.topology {
            Topology::Star => {
                if pos == 0 {
                    let mut out: Vec<usize> = (0..self.size).filter(|&r| r != self.root).collect();
                    out.sort_unstable();
                    out
                } else {
                    Vec::new()
                }
            }
            Topology::Tree { arity } => {
                let first = pos * arity + 1;
                let mut out: Vec<usize> = (first..first.saturating_add(arity))
                    .take_while(|&p| p < self.size)
                    .map(|p| self.pos_to_rank(p))
                    .collect();
                out.sort_unstable();
                out
            }
        }
    }

    /// Whether the rank is an interior (relay) rank: not the root, but
    /// with children whose envelopes it must absorb and forward.
    #[must_use]
    pub fn is_relay(&self, rank: usize) -> bool {
        rank != self.root && !self.children(rank).is_empty()
    }

    /// Every rank in the subtree below `rank` (excluding `rank`
    /// itself), in ascending rank order.
    #[must_use]
    pub fn descendants(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut frontier = self.children(rank);
        while let Some(r) = frontier.pop() {
            out.push(r);
            frontier.extend(self.children(r));
        }
        out.sort_unstable();
        out
    }

    /// Number of edges from `rank` up to the root.
    #[must_use]
    pub fn depth_of(&self, rank: usize) -> usize {
        let mut depth = 0;
        let mut cursor = rank;
        while let Some(parent) = self.parent(cursor) {
            depth += 1;
            cursor = parent;
        }
        depth
    }

    /// The deepest rank's distance from the root — 0 for a world of
    /// one, 1 for any star with workers.
    #[must_use]
    pub fn depth(&self) -> usize {
        (0..self.size).map(|r| self.depth_of(r)).max().unwrap_or(0)
    }

    /// The largest number of children any rank has — the fan-in bound
    /// that caps per-pass receive cost at every level.
    #[must_use]
    pub fn max_fan_in(&self) -> usize {
        (0..self.size)
            .map(|r| self.children(r).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every non-root rank must have a parent, parent/children must be
    /// mutually consistent, and following parents must reach the root.
    fn check_consistency(plan: &CollectionPlan) {
        for rank in 0..plan.size() {
            match plan.parent(rank) {
                None => assert_eq!(rank, plan.root()),
                Some(parent) => {
                    assert!(
                        plan.children(parent).contains(&rank),
                        "rank {rank}'s parent {parent} disowns it"
                    );
                    // Termination doubles as a cycle check.
                    assert!(plan.depth_of(rank) <= plan.size());
                }
            }
        }
        let reachable: usize = 1 + plan.descendants(plan.root()).len();
        assert_eq!(reachable, plan.size(), "tree does not span the world");
    }

    #[test]
    fn star_parents_everyone_to_root() {
        let plan = CollectionPlan::new(Topology::Star, 0, 9);
        check_consistency(&plan);
        for rank in 1..9 {
            assert_eq!(plan.parent(rank), Some(0));
            assert!(!plan.is_relay(rank));
        }
        assert_eq!(plan.children(0).len(), 8);
        assert_eq!(plan.depth(), 1);
        assert_eq!(plan.max_fan_in(), 8);
    }

    #[test]
    fn binary_tree_of_seven_has_depth_two() {
        let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 0, 7);
        check_consistency(&plan);
        assert_eq!(plan.children(0), vec![1, 2]);
        assert_eq!(plan.children(1), vec![3, 4]);
        assert_eq!(plan.children(2), vec![5, 6]);
        assert!(plan.is_relay(1) && plan.is_relay(2));
        assert!(!plan.is_relay(3));
        assert_eq!(plan.depth(), 2);
        assert_eq!(plan.max_fan_in(), 2);
        assert_eq!(plan.descendants(1), vec![3, 4]);
        assert_eq!(plan.descendants(0).len(), 6);
    }

    #[test]
    fn non_zero_root_keeps_the_shape() {
        // Root 2 of 7: ranks {0,1,3,4,5,6} fill positions 1..7.
        let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 2, 7);
        check_consistency(&plan);
        assert_eq!(plan.parent(2), None);
        assert_eq!(plan.children(2), vec![0, 1]);
        assert_eq!(plan.children(0), vec![3, 4]);
        assert_eq!(plan.children(1), vec![5, 6]);
        assert_eq!(plan.depth(), 2);

        let star = CollectionPlan::new(Topology::Star, 3, 5);
        check_consistency(&star);
        assert_eq!(star.parent(0), Some(3));
        assert_eq!(star.children(3), vec![0, 1, 2, 4]);
    }

    #[test]
    fn huge_arity_degenerates_to_star() {
        let tree = CollectionPlan::new(Topology::Tree { arity: 64 }, 0, 9);
        let star = CollectionPlan::new(Topology::Star, 0, 9);
        for rank in 0..9 {
            assert_eq!(tree.parent(rank), star.parent(rank));
            assert_eq!(tree.children(rank), star.children(rank));
        }
    }

    #[test]
    fn single_rank_world_is_just_the_root() {
        let plan = CollectionPlan::new(Topology::Tree { arity: 2 }, 0, 1);
        check_consistency(&plan);
        assert_eq!(plan.depth(), 0);
        assert_eq!(plan.max_fan_in(), 0);
        assert!(plan.children(0).is_empty());
    }

    #[test]
    fn deep_chain_with_arity_one() {
        let plan = CollectionPlan::new(Topology::Tree { arity: 1 }, 0, 4);
        check_consistency(&plan);
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.parent(3), Some(2));
        assert_eq!(plan.descendants(1), vec![2, 3]);
    }
}
