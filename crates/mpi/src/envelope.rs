//! Message envelopes and the binary payload codec.
//!
//! PARMONC worker→collector traffic is a fixed record: the two sum
//! matrices `[Σζ_ij]`, `[Σζ²_ij]` and the sample volume `l_m`
//! (paper Section 2.2) — roughly 120 KB for the performance test's
//! 1000×2 matrices plus framing. The codec here is a minimal
//! little-endian binary layout over [`crate::bytes::Bytes`]; it exists so the
//! substrate moves *serialized* payloads exactly like MPI would, letting
//! the benches measure realistic per-message costs.

use crate::bytes::{Bytes, BytesMut};

use crate::error::MpiError;

/// A message tag, used for matching like MPI's `tag` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tag(pub u32);

impl core::fmt::Display for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "tag({})", self.0)
    }
}

/// A delivered message: source rank, tag and the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The sending rank.
    pub source: usize,
    /// The message tag.
    pub tag: Tag,
    /// The serialized payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Payload size in bytes (what the cluster simulator charges the
    /// network for).
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Incrementally encodes a payload.
///
/// # Examples
///
/// ```
/// use parmonc_mpi::envelope::{PayloadReader, PayloadWriter};
///
/// let mut w = PayloadWriter::new();
/// w.put_u64(42);
/// w.put_f64_slice(&[1.0, 2.5]);
/// let mut r = PayloadReader::new(w.finish());
/// assert_eq!(r.get_u64()?, 42);
/// assert_eq!(r.get_f64_vec()?, vec![1.0, 2.5]);
/// # Ok::<(), parmonc_mpi::MpiError>(())
/// ```
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: BytesMut,
}

impl PayloadWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(bytes),
        }
    }

    /// Creates a writer over a caller-supplied builder — typically one
    /// taken from a [`BufferPool`](crate::pool::BufferPool) so encoding
    /// reuses a retired send buffer instead of allocating.
    #[must_use]
    pub fn from_buffer(buf: BytesMut) -> Self {
        Self { buf }
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` (little-endian bits).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a length-prefixed slice of `f64`s.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(8 + 8 * vs.len());
        self.buf.put_u64_le(vs.len() as u64);
        for v in vs {
            self.buf.put_f64_le(*v);
        }
    }

    /// Finalizes into an immutable payload.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Incrementally decodes a payload written by [`PayloadWriter`].
#[derive(Debug)]
pub struct PayloadReader {
    buf: Bytes,
}

impl PayloadReader {
    /// Wraps a payload for reading.
    #[must_use]
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::MalformedPayload`] if fewer than 8 bytes
    /// remain.
    pub fn get_u64(&mut self) -> Result<u64, MpiError> {
        if self.buf.remaining() < 8 {
            return Err(MpiError::MalformedPayload {
                what: "truncated u64",
            });
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::MalformedPayload`] if fewer than 8 bytes
    /// remain.
    pub fn get_f64(&mut self) -> Result<f64, MpiError> {
        if self.buf.remaining() < 8 {
            return Err(MpiError::MalformedPayload {
                what: "truncated f64",
            });
        }
        Ok(self.buf.get_f64_le())
    }

    /// Reads a length-prefixed `Vec<f64>`.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::MalformedPayload`] on a truncated or
    /// oversized length prefix.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, MpiError> {
        let len = self.get_u64()? as usize;
        if self.buf.remaining() < len.saturating_mul(8) {
            return Err(MpiError::MalformedPayload {
                what: "truncated f64 vector",
            });
        }
        Ok((0..len).map(|_| self.buf.get_f64_le()).collect())
    }

    /// Reads a length-prefixed `f64` sequence into an existing slice,
    /// without allocating — the in-place decode used on the collector
    /// hot path.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::MalformedPayload`] if the encoded length
    /// differs from `out.len()` or the payload is truncated.
    pub fn get_f64_slice_into(&mut self, out: &mut [f64]) -> Result<(), MpiError> {
        let len = self.get_u64()? as usize;
        if len != out.len() {
            return Err(MpiError::MalformedPayload {
                what: "f64 vector length mismatch",
            });
        }
        if self.buf.remaining() < len.saturating_mul(8) {
            return Err(MpiError::MalformedPayload {
                what: "truncated f64 vector",
            });
        }
        for slot in out {
            *slot = self.buf.get_f64_le();
        }
        Ok(())
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    #[test]
    fn round_trip_mixed_payload() {
        let mut w = PayloadWriter::new();
        w.put_u64(7);
        w.put_f64(-1.25);
        w.put_f64_slice(&[0.0, 1.0, f64::INFINITY]);
        let mut r = PayloadReader::new(w.finish());
        assert_eq!(r.get_u64().unwrap(), 7);
        assert_eq!(r.get_f64().unwrap(), -1.25);
        assert_eq!(r.get_f64_vec().unwrap(), vec![0.0, 1.0, f64::INFINITY]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = PayloadReader::new(Bytes::from_static(&[0, 1, 2]));
        assert!(matches!(
            r.get_u64(),
            Err(MpiError::MalformedPayload { .. })
        ));
        let mut w = PayloadWriter::new();
        w.put_u64(100); // claims 100 f64s, provides none
        let mut r = PayloadReader::new(w.finish());
        assert!(matches!(
            r.get_f64_vec(),
            Err(MpiError::MalformedPayload { .. })
        ));
    }

    #[test]
    fn envelope_len() {
        let mut w = PayloadWriter::new();
        w.put_u64(1);
        let env = Envelope {
            source: 3,
            tag: Tag(5),
            payload: w.finish(),
        };
        assert_eq!(env.len(), 8);
        assert!(!env.is_empty());
    }

    #[test]
    fn tag_display() {
        assert_eq!(Tag(5).to_string(), "tag(5)");
    }

    #[test]
    fn performance_test_message_size() {
        // The paper's performance-test message: two 1000x2 sum matrices
        // plus the sample volume — sanity-check the ~120 KB claim's
        // order of magnitude (ours is 2*2000*8 ≈ 32 KB of sums; the
        // paper's 120 KB includes additional bookkeeping).
        let mut w = PayloadWriter::new();
        w.put_u64(1); // sample volume
        w.put_f64_slice(&vec![0.0; 2000]);
        w.put_f64_slice(&vec![0.0; 2000]);
        let payload = w.finish();
        assert!(payload.len() > 32_000 && payload.len() < 40_000);
    }

    #[test]
    fn slice_into_checks_length_and_truncation() {
        let mut w = PayloadWriter::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let payload = w.finish();

        let mut exact = [0.0f64; 3];
        PayloadReader::new(payload.clone())
            .get_f64_slice_into(&mut exact)
            .unwrap();
        assert_eq!(exact, [1.0, 2.0, 3.0]);

        let mut wrong = [0.0f64; 2];
        assert!(matches!(
            PayloadReader::new(payload.clone()).get_f64_slice_into(&mut wrong),
            Err(MpiError::MalformedPayload { .. })
        ));

        let mut truncated = PayloadReader::new(payload.slice(..16));
        assert!(matches!(
            truncated.get_f64_slice_into(&mut exact),
            Err(MpiError::MalformedPayload { .. })
        ));
    }

    proptest! {
        #[test]
        fn f64_vec_round_trips(vs in collection::vec(any::<f64>(), 0..500)) {
            let mut w = PayloadWriter::new();
            w.put_f64_slice(&vs);
            let mut r = PayloadReader::new(w.finish());
            let decoded = r.get_f64_vec().unwrap();
            prop_assert_eq!(decoded.len(), vs.len());
            for (a, b) in decoded.iter().zip(&vs) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }

        /// The in-place decode agrees bit for bit with the allocating
        /// decode.
        #[test]
        fn slice_into_matches_vec_decode(vs in collection::vec(any::<f64>(), 0..200)) {
            let mut w = PayloadWriter::new();
            w.put_f64_slice(&vs);
            let payload = w.finish();
            let by_vec = PayloadReader::new(payload.clone()).get_f64_vec().unwrap();
            let mut in_place = vec![0.0f64; vs.len()];
            PayloadReader::new(payload).get_f64_slice_into(&mut in_place).unwrap();
            for (a, b) in in_place.iter().zip(&by_vec) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}
