//! The maximum-of-t test (Knuth TAOCP §3.3.2C): for i.i.d. `U(0,1)`,
//! `max(u_1, …, u_t)^t` is again `U(0,1)`; a KS test on the transformed
//! maxima checks the joint upper-tail behaviour of t-tuples.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::ks::ks_statistic_uniform;
use crate::special::kolmogorov_sf;

/// Runs the maximum-of-t test on `groups` non-overlapping t-tuples.
///
/// # Panics
///
/// Panics unless `t ≥ 2` and `groups ≥ 10`.
pub fn test_maximum_of_t<R: UniformSource + ?Sized>(
    rng: &mut R,
    groups: usize,
    t: usize,
) -> TestResult {
    assert!(t >= 2, "need tuples of at least 2");
    assert!(groups >= 10, "need enough groups");
    let mut sample: Vec<f64> = (0..groups)
        .map(|_| {
            let mut max = 0.0f64;
            for _ in 0..t {
                max = max.max(rng.next_f64());
            }
            max.powi(t as i32)
        })
        .collect();
    let d = ks_statistic_uniform(&mut sample);
    let sqrt_n = (groups as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    TestResult::new("maximum-of-t", d, kolmogorov_sf(lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn lcg128_passes_for_various_t() {
        let mut rng = Lcg128::new();
        for t in [2, 5, 10] {
            let r = test_maximum_of_t(&mut rng, 50_000, t);
            assert!(r.passes(0.001), "t={t}: {r:?}");
        }
    }

    #[test]
    fn truncated_upper_tail_fails() {
        // A source that never emits values above 0.95: maxima are
        // visibly depleted.
        struct Capped(Lcg128);
        impl UniformSource for Capped {
            fn next_f64(&mut self) -> f64 {
                self.0.next_f64() * 0.95
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        let r = test_maximum_of_t(&mut Capped(Lcg128::new()), 10_000, 5);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn transformed_maxima_are_uniform_in_distribution() {
        // Direct check of the theory: the empirical mean of max^t is
        // ~0.5 for any t.
        let mut rng = Lcg128::new();
        for t in [3usize, 7] {
            let mean: f64 = (0..50_000)
                .map(|_| {
                    let mut max = 0.0f64;
                    for _ in 0..t {
                        max = max.max(rng.next_f64());
                    }
                    max.powi(t as i32)
                })
                .sum::<f64>()
                / 50_000.0;
            assert!((mean - 0.5).abs() < 0.01, "t={t}: {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_singleton_tuples() {
        let _ = test_maximum_of_t(&mut Lcg128::new(), 100, 1);
    }
}
