//! Statistical verification of random number generators.
//!
//! The paper asserts its parallel generator "was verified on parallel
//! processors using rigorous statistical testing" (Section 2.4, citing
//! Marchenko's PaCT 2007 generator paper). This crate reproduces that
//! verification as a reusable battery:
//!
//! * [`uniformity`] — χ² equidistribution in 1, 2 and 3 dimensions
//!   (the *serial test* over successive tuples);
//! * [`ks`] — Kolmogorov–Smirnov test against `U(0, 1)`;
//! * [`runs`] — runs-up test with Knuth's covariance-corrected
//!   statistic;
//! * [`gap`] — gap test (lengths of gaps between visits to an
//!   interval);
//! * [`poker`] — poker (partition) test over digit groups;
//! * [`correlation`] — lag-k serial correlation with the normal
//!   approximation;
//! * [`birthday`] — Marsaglia's birthday-spacings test;
//! * [`collision`] — Knuth's collision (hashing) test;
//! * [`maximum`] — the maximum-of-t test (`max^t` is uniform);
//! * [`permutation`] — relative-order uniformity over `t!`
//!   permutations;
//! * [`crossstream`] — *inter-stream* independence: correlation and 2-D
//!   uniformity across leapfrogged PARMONC streams, the property that
//!   justifies formula (5)'s averaging of per-processor results;
//! * [`battery`] — run everything against any
//!   [`UniformSource`](parmonc_rng::UniformSource) and render a report.
//!
//! Each test returns a [`TestResult`] with a p-value; the convention is
//! two-sided acceptance `alpha < p < 1 − alpha`. The test suite also
//! checks the battery's *power*: a 16-bit LCG with known structure must
//! fail it (no vacuous passes).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod battery;
pub mod birthday;
pub mod collision;
pub mod correlation;
pub mod crossstream;
pub mod gap;
pub mod ks;
pub mod maximum;
pub mod permutation;
pub mod poker;
pub mod runs;
pub mod special;
pub mod uniformity;

pub use battery::{run_battery, BatteryReport, TestResult, Verdict};
