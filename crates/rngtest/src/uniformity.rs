//! χ² equidistribution tests in 1, 2 and 3 dimensions (the serial
//! test).

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::chi2_sf;

/// χ² goodness-of-fit statistic and p-value for observed counts against
/// equal expected frequencies.
///
/// # Panics
///
/// Panics if `counts.len() < 2` or the total count is zero.
#[must_use]
pub fn chi2_equal_cells(counts: &[u64]) -> (f64, f64) {
    assert!(counts.len() >= 2, "need at least two cells");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "need observations");
    let expected = total as f64 / counts.len() as f64;
    let stat: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = (counts.len() - 1) as f64;
    (stat, chi2_sf(stat, df))
}

/// 1-D equidistribution: bin `n` outputs into `bins` equal cells.
pub fn test_1d<R: UniformSource + ?Sized>(rng: &mut R, n: usize, bins: usize) -> TestResult {
    let mut counts = vec![0u64; bins];
    for _ in 0..n {
        let u = rng.next_f64();
        let k = ((u * bins as f64) as usize).min(bins - 1);
        counts[k] += 1;
    }
    let (stat, p) = chi2_equal_cells(&counts);
    TestResult::new("uniformity-1d", stat, p)
}

/// 2-D serial test: bin successive non-overlapping pairs into a
/// `bins × bins` grid.
pub fn test_2d<R: UniformSource + ?Sized>(rng: &mut R, pairs: usize, bins: usize) -> TestResult {
    let mut counts = vec![0u64; bins * bins];
    for _ in 0..pairs {
        let x = ((rng.next_f64() * bins as f64) as usize).min(bins - 1);
        let y = ((rng.next_f64() * bins as f64) as usize).min(bins - 1);
        counts[x * bins + y] += 1;
    }
    let (stat, p) = chi2_equal_cells(&counts);
    TestResult::new("serial-2d", stat, p)
}

/// 3-D serial test over successive non-overlapping triples.
pub fn test_3d<R: UniformSource + ?Sized>(rng: &mut R, triples: usize, bins: usize) -> TestResult {
    let mut counts = vec![0u64; bins * bins * bins];
    for _ in 0..triples {
        let x = ((rng.next_f64() * bins as f64) as usize).min(bins - 1);
        let y = ((rng.next_f64() * bins as f64) as usize).min(bins - 1);
        let z = ((rng.next_f64() * bins as f64) as usize).min(bins - 1);
        counts[(x * bins + y) * bins + z] += 1;
    }
    let (stat, p) = chi2_equal_cells(&counts);
    TestResult::new("serial-3d", stat, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::baseline::SplitMix64;
    use parmonc_rng::Lcg128;

    #[test]
    fn lcg128_passes_all_dimensions() {
        let mut rng = Lcg128::new();
        let r1 = test_1d(&mut rng, 200_000, 100);
        assert!(r1.passes(0.001), "{r1:?}");
        let r2 = test_2d(&mut rng, 200_000, 16);
        assert!(r2.passes(0.001), "{r2:?}");
        let r3 = test_3d(&mut rng, 300_000, 8);
        assert!(r3.passes(0.001), "{r3:?}");
    }

    #[test]
    fn splitmix_passes() {
        let mut rng = SplitMix64::new(12345);
        assert!(test_1d(&mut rng, 100_000, 64).passes(0.001));
        assert!(test_2d(&mut rng, 100_000, 10).passes(0.001));
    }

    #[test]
    fn constant_source_fails() {
        struct Constant;
        impl UniformSource for Constant {
            fn next_f64(&mut self) -> f64 {
                0.42
            }
            fn next_u64(&mut self) -> u64 {
                42
            }
        }
        let r = test_1d(&mut Constant, 10_000, 10);
        assert!(!r.passes(0.001), "constant stream must fail: {r:?}");
    }

    #[test]
    fn biased_source_fails() {
        // u^2 concentrates near 0.
        struct Biased(Lcg128);
        impl UniformSource for Biased {
            fn next_f64(&mut self) -> f64 {
                let u = self.0.next_f64();
                u * u
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        let r = test_1d(&mut Biased(Lcg128::new()), 50_000, 20);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn chi2_statistic_zero_for_perfect_counts() {
        let (stat, p) = chi2_equal_cells(&[100, 100, 100, 100]);
        assert_eq!(stat, 0.0);
        assert!(p > 0.999);
    }

    #[test]
    #[should_panic(expected = "two cells")]
    fn rejects_single_cell() {
        let _ = chi2_equal_cells(&[5]);
    }
}
