//! The battery runner: every test against one source, with a rendered
//! report.

use core::fmt;

use parmonc_rng::{StreamHierarchy, UniformSource};

/// Outcome of one statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test name (kebab-case identifier).
    pub name: &'static str,
    /// The test statistic (χ², z, or D depending on the test).
    pub statistic: f64,
    /// The p-value.
    pub p_value: f64,
}

impl TestResult {
    /// Creates a result.
    #[must_use]
    pub fn new(name: &'static str, statistic: f64, p_value: f64) -> Self {
        Self {
            name,
            statistic,
            p_value,
        }
    }

    /// Two-sided acceptance at significance `alpha`:
    /// `alpha < p < 1 − alpha`. (A p-value of ~1.0 is as suspicious as
    /// ~0.0: it means the data fit *too* well.)
    #[must_use]
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha && self.p_value < 1.0 - alpha
    }

    /// The verdict at significance `alpha`.
    #[must_use]
    pub fn verdict(&self, alpha: f64) -> Verdict {
        if self.passes(alpha) {
            Verdict::Pass
        } else {
            Verdict::Fail
        }
    }
}

impl fmt::Display for TestResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} stat = {:>12.4}  p = {:.6}",
            self.name, self.statistic, self.p_value
        )
    }
}

/// Pass/fail verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The p-value is inside the acceptance band.
    Pass,
    /// The p-value is in either tail.
    Fail,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Pass => write!(f, "PASS"),
            Self::Fail => write!(f, "FAIL"),
        }
    }
}

/// Results of a full battery run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryReport {
    /// Significance level used for verdicts.
    pub alpha: f64,
    /// Individual results in execution order.
    pub results: Vec<TestResult>,
}

impl BatteryReport {
    /// Whether every test passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.results.iter().all(|r| r.passes(self.alpha))
    }

    /// Count of failing tests.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.passes(self.alpha))
            .count()
    }
}

impl fmt::Display for BatteryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "statistical battery (alpha = {}, accept {} < p < {}):",
            self.alpha,
            self.alpha,
            1.0 - self.alpha
        )?;
        for r in &self.results {
            writeln!(f, "  {r}  [{}]", r.verdict(self.alpha))?;
        }
        write!(
            f,
            "verdict: {}/{} passed",
            self.results.len() - self.failures(),
            self.results.len()
        )
    }
}

/// Scale of a battery run (trades runtime for power).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// ~10⁵ draws per test; seconds. Used by the test suite.
    #[default]
    Standard,
    /// ~10⁷ draws per test; the `rng_battery` binary's default.
    Thorough,
}

/// Runs the single-stream battery against `rng` at significance
/// `alpha`.
pub fn run_battery<R: UniformSource + ?Sized>(
    rng: &mut R,
    alpha: f64,
    scale: Scale,
) -> BatteryReport {
    let k = match scale {
        Scale::Standard => 1,
        Scale::Thorough => 100,
    };
    let results = vec![
        crate::uniformity::test_1d(rng, 100_000 * k, 128),
        crate::uniformity::test_2d(rng, 100_000 * k, 16),
        crate::uniformity::test_3d(rng, 100_000 * k, 8),
        crate::ks::test_ks(rng, (100_000 * k).min(1_000_000)),
        crate::runs::test_runs_up_down(rng, 100_000 * k),
        crate::runs::test_runs_median(rng, 100_000 * k),
        crate::gap::test_gap(rng, 0.0, 0.5, 50_000 * k, 12),
        crate::poker::test_poker(rng, 50_000 * k, 5, 10),
        crate::correlation::test_serial_correlation(rng, 100_000 * k, 1),
        crate::correlation::test_serial_correlation(rng, 100_000 * k, 2),
        crate::birthday::test_birthday_spacings(rng, 1_000 * k, 256, 1 << 22),
        crate::collision::test_collisions(rng, 1_000 * k, 256, 1 << 20),
        crate::maximum::test_maximum_of_t(rng, 50_000 * k, 5),
        crate::permutation::test_permutations(rng, 60_000 * k, 4),
    ];
    BatteryReport { alpha, results }
}

/// Runs the cross-stream battery against a hierarchy at significance
/// `alpha`.
pub fn run_cross_stream_battery(
    hierarchy: &StreamHierarchy,
    alpha: f64,
    scale: Scale,
) -> BatteryReport {
    let k = match scale {
        Scale::Standard => 1,
        Scale::Thorough => 10,
    };
    let results = vec![
        crate::crossstream::test_cross_correlation(hierarchy, 0, 1, 100_000 * k),
        crate::crossstream::test_cross_correlation(hierarchy, 0, 511, 100_000 * k),
        crate::crossstream::test_cross_uniformity(hierarchy, 0, 1, 160_000 * k, 16),
        crate::crossstream::test_grand_mean(hierarchy, 64, 2_000 * k),
    ];
    BatteryReport { alpha, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn lcg128_passes_full_battery() {
        // The paper's claim: the 128-bit generator withstands rigorous
        // statistical testing.
        let mut rng = Lcg128::new();
        let report = run_battery(&mut rng, 0.001, Scale::Standard);
        assert!(report.all_pass(), "{report}");
    }

    #[test]
    fn cross_stream_battery_passes() {
        let h = StreamHierarchy::default();
        let report = run_cross_stream_battery(&h, 0.001, Scale::Standard);
        assert!(report.all_pass(), "{report}");
    }

    #[test]
    fn bad_generator_fails_battery() {
        // Power check: a 16-bit ZX81-style LCG (u' = 75u + 74 mod
        // 2^16 + 1) must NOT pass — otherwise the battery is vacuous.
        struct Weak(u64);
        impl UniformSource for Weak {
            fn next_f64(&mut self) -> f64 {
                self.0 = (75 * self.0 + 74) % 65537;
                (self.0 % 65536) as f64 / 65536.0
            }
            fn next_u64(&mut self) -> u64 {
                // Only 16 bits of entropy stretched to 64: every
                // integer-based test sees the lattice.
                let hi = (self.next_f64() * 65536.0) as u64;
                (hi << 48) | (hi << 32) | (hi << 16) | hi
            }
        }
        let report = run_battery(&mut Weak(1), 0.001, Scale::Standard);
        assert!(
            report.failures() >= 1,
            "a 16-bit LCG must fail at least one test:\n{report}"
        );
    }

    #[test]
    fn report_rendering() {
        let report = BatteryReport {
            alpha: 0.01,
            results: vec![
                TestResult::new("a", 1.0, 0.5),
                TestResult::new("b", 9.0, 0.0001),
            ],
        };
        assert!(!report.all_pass());
        assert_eq!(report.failures(), 1);
        let text = report.to_string();
        assert!(text.contains("PASS"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("1/2 passed"));
    }

    #[test]
    fn two_sided_acceptance() {
        assert!(TestResult::new("t", 0.0, 0.5).passes(0.01));
        assert!(!TestResult::new("t", 0.0, 0.005).passes(0.01));
        assert!(!TestResult::new("t", 0.0, 0.9999).passes(0.01));
        assert_eq!(TestResult::new("t", 0.0, 0.5).verdict(0.01), Verdict::Pass);
    }
}
