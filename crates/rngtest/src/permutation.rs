//! The permutation test (Knuth TAOCP §3.3.2E): the relative order of a
//! t-tuple of continuous i.i.d. values is uniform over the `t!`
//! permutations.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::chi2_sf;
use crate::uniformity::chi2_equal_cells;

/// Maps a tuple to its permutation index in `0..t!` (Lehmer code).
///
/// # Panics
///
/// Panics if the tuple has fewer than 2 entries.
#[must_use]
pub fn permutation_index(tuple: &[f64]) -> usize {
    assert!(tuple.len() >= 2, "need at least a pair");
    let t = tuple.len();
    let mut index = 0usize;
    for i in 0..t {
        let smaller_after = tuple[i + 1..].iter().filter(|x| **x < tuple[i]).count();
        index = index * (t - i) + smaller_after;
    }
    index
}

/// Runs the permutation test over `groups` non-overlapping t-tuples:
/// χ² of the permutation-index counts against uniform over `t!`.
///
/// # Panics
///
/// Panics unless `2 ≤ t ≤ 7` (beyond 7, `t!` cells need huge samples)
/// and `groups ≥ 10 · t!`.
pub fn test_permutations<R: UniformSource + ?Sized>(
    rng: &mut R,
    groups: usize,
    t: usize,
) -> TestResult {
    assert!((2..=7).contains(&t), "tuple size must be in 2..=7");
    let factorial: usize = (1..=t).product();
    assert!(groups >= 10 * factorial, "need >= 10 t! groups");

    let mut counts = vec![0u64; factorial];
    let mut tuple = vec![0.0f64; t];
    for _ in 0..groups {
        for x in tuple.iter_mut() {
            *x = rng.next_f64();
        }
        counts[permutation_index(&tuple)] += 1;
    }
    let (stat, _) = chi2_equal_cells(&counts);
    TestResult::new("permutation", stat, chi2_sf(stat, (factorial - 1) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn lehmer_codes_are_bijective() {
        // All 3! = 6 orderings of distinct values map to distinct
        // indices in 0..6.
        let tuples = [
            [1.0, 2.0, 3.0],
            [1.0, 3.0, 2.0],
            [2.0, 1.0, 3.0],
            [2.0, 3.0, 1.0],
            [3.0, 1.0, 2.0],
            [3.0, 2.0, 1.0],
        ];
        let mut seen = std::collections::HashSet::new();
        for t in &tuples {
            let idx = permutation_index(t);
            assert!(idx < 6);
            assert!(seen.insert(idx), "duplicate index {idx}");
        }
    }

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        for t in [3usize, 4, 5] {
            let r = test_permutations(&mut rng, 60_000, t);
            assert!(r.passes(0.001), "t={t}: {r:?}");
        }
    }

    #[test]
    fn monotone_source_fails() {
        // A slowly increasing sawtooth favours ascending permutations.
        struct Ramp(f64, Lcg128);
        impl UniformSource for Ramp {
            fn next_f64(&mut self) -> f64 {
                self.0 = (self.0 + 0.13) % 1.0;
                // tiny jitter so values are distinct
                (self.0 + self.1.next_f64() * 1e-6).min(0.999_999)
            }
            fn next_u64(&mut self) -> u64 {
                self.1.next_u64()
            }
        }
        let r = test_permutations(&mut Ramp(0.0, Lcg128::new()), 10_000, 3);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "2..=7")]
    fn rejects_large_tuples() {
        let _ = test_permutations(&mut Lcg128::new(), 100_000, 8);
    }
}
