//! Runs tests: runs up-and-down, and runs above/below the median.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::normal_two_sided;

/// Counts runs up-and-down in a sequence (a "run" is a maximal
/// monotone stretch of the difference signs).
///
/// # Panics
///
/// Panics if the sample has fewer than 2 elements or contains equal
/// neighbours (probability zero for continuous outputs).
#[must_use]
pub fn count_runs_up_down(sample: &[f64]) -> u64 {
    assert!(sample.len() >= 2, "need at least two observations");
    let mut runs = 1u64;
    let mut prev_up = sample[1] > sample[0];
    for w in sample.windows(2).skip(1) {
        let up = w[1] > w[0];
        if up != prev_up {
            runs += 1;
            prev_up = up;
        }
    }
    runs
}

/// Runs up-and-down test: for i.i.d. continuous data the run count is
/// asymptotically `N((2n−1)/3, (16n−29)/90)`.
pub fn test_runs_up_down<R: UniformSource + ?Sized>(rng: &mut R, n: usize) -> TestResult {
    let sample: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let runs = count_runs_up_down(&sample) as f64;
    let nf = n as f64;
    let mean = (2.0 * nf - 1.0) / 3.0;
    let var = (16.0 * nf - 29.0) / 90.0;
    let z = (runs - mean) / var.sqrt();
    TestResult::new("runs-up-down", z, normal_two_sided(z))
}

/// Runs above/below 0.5 test: with `n1` values above and `n2` below,
/// the run count is asymptotically normal with mean
/// `2 n1 n2 / n + 1`.
pub fn test_runs_median<R: UniformSource + ?Sized>(rng: &mut R, n: usize) -> TestResult {
    let bits: Vec<bool> = (0..n).map(|_| rng.next_f64() > 0.5).collect();
    let n1 = bits.iter().filter(|b| **b).count() as f64;
    let n2 = n as f64 - n1;
    let mut runs = 1.0;
    for w in bits.windows(2) {
        if w[0] != w[1] {
            runs += 1.0;
        }
    }
    let nf = n as f64;
    let mean = 2.0 * n1 * n2 / nf + 1.0;
    let var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - nf) / (nf * nf * (nf - 1.0));
    let z = (runs - mean) / var.sqrt();
    TestResult::new("runs-median", z, normal_two_sided(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn run_counting_small_cases() {
        // 1,3,2: up then down → 2 runs.
        assert_eq!(count_runs_up_down(&[1.0, 3.0, 2.0]), 2);
        // Monotone: 1 run.
        assert_eq!(count_runs_up_down(&[1.0, 2.0, 3.0, 4.0]), 1);
        // Alternating: n-1 runs.
        assert_eq!(count_runs_up_down(&[1.0, 5.0, 2.0, 6.0, 3.0]), 4);
    }

    #[test]
    fn lcg128_passes_both_runs_tests() {
        let mut rng = Lcg128::new();
        let r = test_runs_up_down(&mut rng, 100_000);
        assert!(r.passes(0.001), "{r:?}");
        let r = test_runs_median(&mut rng, 100_000);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn sawtooth_fails_runs_up_down() {
        // Strictly alternating high/low values: far too many runs.
        struct Sawtooth(bool);
        impl UniformSource for Sawtooth {
            fn next_f64(&mut self) -> f64 {
                self.0 = !self.0;
                if self.0 {
                    0.9
                } else {
                    0.1
                }
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let r = test_runs_up_down(&mut Sawtooth(false), 10_000);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn trending_fails_runs_median() {
        // Long blocks above/below 0.5: far too few runs.
        struct Blocky {
            inner: Lcg128,
            phase: usize,
        }
        impl UniformSource for Blocky {
            fn next_f64(&mut self) -> f64 {
                self.phase += 1;
                let u = self.inner.next_f64() * 0.5;
                if (self.phase / 50).is_multiple_of(2) {
                    u
                } else {
                    0.5 + u
                }
            }
            fn next_u64(&mut self) -> u64 {
                self.inner.next_u64()
            }
        }
        let mut rng = Blocky {
            inner: Lcg128::new(),
            phase: 0,
        };
        let r = test_runs_median(&mut rng, 20_000);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_short_sample() {
        let _ = count_runs_up_down(&[1.0]);
    }
}
