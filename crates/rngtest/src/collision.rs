//! The collision test (Knuth TAOCP §3.3.2I): throw `balls` balls into
//! `urns` urns with `urns ≫ balls`; the number of collisions follows a
//! known distribution with mean ≈ `balls²/(2·urns)`.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::normal_two_sided;

/// Counts collisions when throwing `balls` uniform indices into
/// `urns` urns.
pub fn count_collisions<R: UniformSource + ?Sized>(rng: &mut R, balls: usize, urns: u64) -> u64 {
    let mut seen = std::collections::HashSet::with_capacity(balls);
    let mut collisions = 0u64;
    for _ in 0..balls {
        let urn = parmonc_rng::distributions::uniform_index(rng, urns);
        if !seen.insert(urn) {
            collisions += 1;
        }
    }
    collisions
}

/// Runs the collision test: `experiments` repetitions, z-test of the
/// total collision count against its Poisson-approximate moments
/// (`λ = balls²/(2·urns)` per experiment).
///
/// # Panics
///
/// Panics unless `balls ≥ 16`, `urns ≥ 16·balls` (the sparse regime the
/// approximation needs) and `experiments > 0`.
pub fn test_collisions<R: UniformSource + ?Sized>(
    rng: &mut R,
    experiments: usize,
    balls: usize,
    urns: u64,
) -> TestResult {
    assert!(balls >= 16, "need enough balls");
    assert!(urns >= 16 * balls as u64, "need the sparse regime");
    assert!(experiments > 0, "need experiments");

    let lambda = (balls as f64) * (balls as f64) / (2.0 * urns as f64);
    let total: u64 = (0..experiments)
        .map(|_| count_collisions(rng, balls, urns))
        .sum();
    // Sum of experiments ~ Poisson(lambda) variables ≈ normal.
    let mean = experiments as f64 * lambda;
    let z = (total as f64 - mean) / mean.sqrt();
    TestResult::new("collision", z, normal_two_sided(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn collision_mean_matches_birthday_formula() {
        let mut rng = Lcg128::new();
        let (balls, urns) = (512usize, 1u64 << 20);
        let lambda = 512.0 * 512.0 / (2.0 * (1u64 << 20) as f64); // 0.125
        let trials = 4000;
        let total: u64 = (0..trials)
            .map(|_| count_collisions(&mut rng, balls, urns))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - lambda).abs() < 0.03, "mean {mean} vs {lambda}");
    }

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        let r = test_collisions(&mut rng, 2000, 256, 1 << 20);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn few_distinct_values_fail() {
        struct Coarse(Lcg128);
        impl UniformSource for Coarse {
            fn next_f64(&mut self) -> f64 {
                self.0.next_f64()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64() & 0xFF00_0000_0000_0000 // 256 values
            }
        }
        let r = test_collisions(&mut Coarse(Lcg128::new()), 100, 64, 1 << 16);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "sparse regime")]
    fn rejects_dense_configuration() {
        let _ = test_collisions(&mut Lcg128::new(), 1, 100, 200);
    }
}
