//! Special functions needed for p-values: log-gamma, regularized
//! incomplete gamma, the χ² survival function, the error function and
//! the Kolmogorov distribution.
//!
//! Implementations are the standard numerical recipes (Lanczos
//! approximation, series/continued-fraction split for the incomplete
//! gamma, Abramowitz–Stegun rational approximation for `erf`), accurate
//! to well beyond what hypothesis testing needs.

// Published coefficient tables are kept verbatim even where they
// exceed f64 precision.
#![allow(clippy::excessive_precision)]

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9), |relative error| < 1e-13 for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series for `x < a + 1` and the continued fraction
/// otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction.
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Survival function of the χ² distribution with `df` degrees of
/// freedom: `P(X > x)`.
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
#[must_use]
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    gamma_q(df / 2.0, x / 2.0)
}

/// The error function, Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, ample for testing).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal survival function `P(Z > z)`.
#[must_use]
pub fn normal_sf(z: f64) -> f64 {
    0.5 * (1.0 - erf(z / std::f64::consts::SQRT_2))
}

/// Two-sided normal p-value `P(|Z| > |z|)`.
#[must_use]
pub fn normal_two_sided(z: f64) -> f64 {
    2.0 * normal_sf(z.abs())
}

/// Kolmogorov distribution survival function
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`, the asymptotic
/// p-value of the KS statistic `λ = √n · D_n`.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x).
        for x in [0.3, 1.7, 4.2, 10.0, 55.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn gamma_p_q_complement() {
        for a in [0.5, 1.0, 3.0, 10.0] {
            for x in [0.1, 1.0, 5.0, 20.0] {
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 1.0, 3.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x={x}"
            );
        }
    }

    #[test]
    fn chi2_sf_reference_values() {
        // Standard table: P(χ²_1 > 3.841) = 0.05; P(χ²_10 > 18.307) = 0.05.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        assert!((chi2_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
        // Median of χ²_2 is 2 ln 2.
        assert!((chi2_sf(2.0 * 2f64.ln(), 2.0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_monotone_in_x() {
        let mut prev = 1.0;
        for i in 1..50 {
            let x = i as f64;
            let p = chi2_sf(x, 5.0);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation guarantees |error| < 1.5e-7.
        assert!(erf(0.0).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1.5e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1.5e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd function
        assert!(erf(6.0) > 0.999_999_9);
    }

    #[test]
    fn normal_sf_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.959_96) - 0.025).abs() < 1e-4);
        assert!((normal_two_sided(1.959_96) - 0.05).abs() < 2e-4);
    }

    #[test]
    fn kolmogorov_reference_values() {
        // Q(1.358) ≈ 0.05 (the classic 5% critical value).
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 2e-3);
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_zero() {
        let _ = ln_gamma(0.0);
    }
}
