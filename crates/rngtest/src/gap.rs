//! The gap test (Knuth TAOCP vol. 2, §3.3.2): lengths of gaps between
//! visits to an interval `[lo, hi)` are geometric.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::chi2_sf;

/// Runs the gap test: observe `gaps` gap lengths for the marker
/// interval `[lo, hi)`, bucket them into `0, 1, …, t-1, ≥t`, and χ²
/// against the geometric distribution `P(gap = k) = p (1−p)^k`.
///
/// # Panics
///
/// Panics unless `0 ≤ lo < hi ≤ 1` and `gaps > 0` and `max_gap ≥ 2`.
pub fn test_gap<R: UniformSource + ?Sized>(
    rng: &mut R,
    lo: f64,
    hi: f64,
    gaps: usize,
    max_gap: usize,
) -> TestResult {
    assert!(0.0 <= lo && lo < hi && hi <= 1.0, "need 0 <= lo < hi <= 1");
    assert!(gaps > 0, "need at least one gap");
    assert!(max_gap >= 2, "need at least two gap buckets");
    let p = hi - lo;

    let mut counts = vec![0u64; max_gap + 1]; // last bucket = >= max_gap
    let mut observed = 0usize;
    let mut current_gap = 0usize;
    // Cap total draws to avoid pathological sources hanging the test.
    let max_draws = gaps.saturating_mul(1000).max(1_000_000);
    let mut draws = 0usize;
    while observed < gaps && draws < max_draws {
        let u = rng.next_f64();
        draws += 1;
        if u >= lo && u < hi {
            counts[current_gap.min(max_gap)] += 1;
            observed += 1;
            current_gap = 0;
        } else {
            current_gap += 1;
        }
    }

    // Expected geometric frequencies.
    let total = observed as f64;
    let mut stat = 0.0;
    for (k, &c) in counts.iter().enumerate() {
        let prob = if k < max_gap {
            p * (1.0 - p).powi(k as i32)
        } else {
            (1.0 - p).powi(max_gap as i32)
        };
        let expected = total * prob;
        if expected > 0.0 {
            let d = c as f64 - expected;
            stat += d * d / expected;
        }
    }
    let df = max_gap as f64; // (max_gap + 1) cells − 1
    TestResult::new("gap", stat, chi2_sf(stat, df))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        let r = test_gap(&mut rng, 0.0, 0.5, 50_000, 10);
        assert!(r.passes(0.001), "{r:?}");
        let r = test_gap(&mut rng, 0.3, 0.7, 30_000, 8);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn periodic_source_fails() {
        // A source that revisits the marker interval on a strict period
        // has deterministic gap lengths.
        struct Periodic(usize);
        impl UniformSource for Periodic {
            fn next_f64(&mut self) -> f64 {
                self.0 = (self.0 + 1) % 4;
                if self.0 == 0 {
                    0.25 // in [0, 0.5)
                } else {
                    0.75
                }
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let r = test_gap(&mut Periodic(0), 0.0, 0.5, 5_000, 8);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn starved_source_terminates() {
        // A source that never hits the marker interval must not hang.
        struct Never;
        impl UniformSource for Never {
            fn next_f64(&mut self) -> f64 {
                0.99
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let r = test_gap(&mut Never, 0.0, 0.1, 1_000, 5);
        // Zero observations: statistic is degenerate but finite.
        assert!(r.statistic.is_finite());
    }

    #[test]
    #[should_panic(expected = "0 <= lo < hi <= 1")]
    fn rejects_bad_interval() {
        let _ = test_gap(&mut Lcg128::new(), 0.7, 0.3, 10, 5);
    }
}
