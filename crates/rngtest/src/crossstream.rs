//! Inter-stream independence tests for the leapfrog hierarchy.
//!
//! The paper's central requirement for a parallel RNG (Section 2.2):
//! "sequences of base random numbers generated on different processors
//! must be independent of each other". These tests draw from *distinct
//! processor streams* of a [`StreamHierarchy`] and check (a) pairwise
//! cross-correlation and (b) 2-D uniformity of points whose coordinates
//! come from different streams — the failure mode that would bias the
//! cross-processor average of formula (5).

use parmonc_rng::{StreamHierarchy, StreamId};

use crate::battery::TestResult;
use crate::special::normal_two_sided;
use crate::uniformity::chi2_equal_cells;

/// Cross-correlation between two processor streams: for i.i.d. pairs
/// the sample correlation is asymptotically `N(0, 1/n)`.
///
/// # Panics
///
/// Panics if the processor indices coincide or exceed capacity.
pub fn test_cross_correlation(
    hierarchy: &StreamHierarchy,
    proc_a: u64,
    proc_b: u64,
    n: usize,
) -> TestResult {
    assert_ne!(proc_a, proc_b, "streams must be distinct");
    let mut a = hierarchy
        .realization_stream(StreamId::new(0, proc_a, 0))
        .expect("processor index within capacity");
    let mut b = hierarchy
        .realization_stream(StreamId::new(0, proc_b, 0))
        .expect("processor index within capacity");

    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    let mut sum_ab = 0.0;
    let mut sum_a2 = 0.0;
    let mut sum_b2 = 0.0;
    for _ in 0..n {
        let x = a.next_f64();
        let y = b.next_f64();
        sum_a += x;
        sum_b += y;
        sum_ab += x * y;
        sum_a2 += x * x;
        sum_b2 += y * y;
    }
    let nf = n as f64;
    let cov = sum_ab / nf - (sum_a / nf) * (sum_b / nf);
    let var_a = sum_a2 / nf - (sum_a / nf).powi(2);
    let var_b = sum_b2 / nf - (sum_b / nf).powi(2);
    let rho = cov / (var_a * var_b).sqrt();
    let z = rho * nf.sqrt();
    TestResult::new("cross-stream-correlation", z, normal_two_sided(z))
}

/// 2-D uniformity of cross-stream pairs `(x from stream a, y from
/// stream b)` on a `bins × bins` grid.
///
/// # Panics
///
/// Panics if the processor indices coincide or exceed capacity.
pub fn test_cross_uniformity(
    hierarchy: &StreamHierarchy,
    proc_a: u64,
    proc_b: u64,
    pairs: usize,
    bins: usize,
) -> TestResult {
    assert_ne!(proc_a, proc_b, "streams must be distinct");
    let mut a = hierarchy
        .realization_stream(StreamId::new(0, proc_a, 0))
        .expect("processor index within capacity");
    let mut b = hierarchy
        .realization_stream(StreamId::new(0, proc_b, 0))
        .expect("processor index within capacity");

    let mut counts = vec![0u64; bins * bins];
    for _ in 0..pairs {
        let x = ((a.next_f64() * bins as f64) as usize).min(bins - 1);
        let y = ((b.next_f64() * bins as f64) as usize).min(bins - 1);
        counts[x * bins + y] += 1;
    }
    let (stat, p) = chi2_equal_cells(&counts);
    TestResult::new("cross-stream-uniformity", stat, p)
}

/// Mean agreement across many streams: averages `per_stream` draws from
/// each of `streams` processor streams and z-tests the grand mean
/// against 1/2 — the aggregate statistic formula (5) actually relies
/// on.
pub fn test_grand_mean(hierarchy: &StreamHierarchy, streams: u64, per_stream: usize) -> TestResult {
    let mut sum = 0.0;
    let total = streams as usize * per_stream;
    for p in 0..streams {
        let mut s = hierarchy
            .realization_stream(StreamId::new(0, p, 0))
            .expect("processor index within capacity");
        for _ in 0..per_stream {
            sum += s.next_f64();
        }
    }
    let mean = sum / total as f64;
    // Var U(0,1) = 1/12.
    let z = (mean - 0.5) / (1.0 / (12.0 * total as f64)).sqrt();
    TestResult::new("cross-stream-grand-mean", z, normal_two_sided(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::LeapConfig;

    #[test]
    fn adjacent_processor_streams_uncorrelated() {
        let h = StreamHierarchy::default();
        for (a, b) in [(0, 1), (0, 7), (100, 101), (0, 65_535)] {
            let r = test_cross_correlation(&h, a, b, 100_000);
            assert!(r.passes(0.001), "procs {a},{b}: {r:?}");
        }
    }

    #[test]
    fn cross_pairs_fill_the_square() {
        let h = StreamHierarchy::default();
        let r = test_cross_uniformity(&h, 0, 1, 160_000, 16);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn grand_mean_across_many_streams() {
        let h = StreamHierarchy::default();
        let r = test_grand_mean(&h, 64, 2_000);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn overlapping_streams_are_detected() {
        // Sanity check of the test's power: with a leap of 2^4 = 16
        // numbers per processor stream, drawing 100k numbers from
        // "different" streams makes them the SAME sequence shifted by
        // 16 — the correlation test at the shifted lag must explode.
        // We simulate the failure directly: stream b = stream a
        // shifted by zero (identical streams) is maximally correlated.
        let tiny = LeapConfig::new(12, 8, 4).unwrap();
        let h = StreamHierarchy::new(tiny);
        let mut a = h.realization_stream(StreamId::new(0, 1, 0)).unwrap();
        let mut b = h.realization_stream(StreamId::new(0, 1, 0)).unwrap();
        let mut same = true;
        for _ in 0..100 {
            if a.next_f64() != b.next_f64() {
                same = false;
            }
        }
        assert!(same, "identical ids give identical streams");
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn rejects_identical_streams() {
        let h = StreamHierarchy::default();
        let _ = test_cross_correlation(&h, 3, 3, 100);
    }
}
