//! Kolmogorov–Smirnov test against the uniform distribution.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::kolmogorov_sf;

/// Computes the two-sided KS statistic `D_n = sup |F_n(x) − x|` for a
/// sample against `U(0, 1)`.
///
/// # Panics
///
/// Panics if the sample is empty.
#[must_use]
pub fn ks_statistic_uniform(sample: &mut [f64]) -> f64 {
    assert!(!sample.is_empty(), "KS needs a non-empty sample");
    sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in a KS sample"));
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let upper = (i + 1) as f64 / n - x;
        let lower = x - i as f64 / n;
        d = d.max(upper).max(lower);
    }
    d
}

/// Runs the KS test on `n` fresh outputs from `rng`; p-value from the
/// asymptotic Kolmogorov distribution with the Stephens small-sample
/// correction `(√n + 0.12 + 0.11/√n) · D`.
pub fn test_ks<R: UniformSource + ?Sized>(rng: &mut R, n: usize) -> TestResult {
    let mut sample: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let d = ks_statistic_uniform(&mut sample);
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    TestResult::new("kolmogorov-smirnov", d, kolmogorov_sf(lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::baseline::XorShift64Star;
    use parmonc_rng::Lcg128;

    #[test]
    fn perfect_grid_has_tiny_statistic() {
        // Points at (i+0.5)/n have D = 0.5/n.
        let n = 1000;
        let mut sample: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_uniform(&mut sample);
        assert!((d - 0.5 / n as f64).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        let r = test_ks(&mut rng, 100_000);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn xorshift_passes() {
        let mut rng = XorShift64Star::new(99);
        let r = test_ks(&mut rng, 50_000);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn shifted_distribution_fails() {
        struct Shifted(Lcg128);
        impl UniformSource for Shifted {
            fn next_f64(&mut self) -> f64 {
                0.05 + 0.95 * self.0.next_f64() // support [0.05, 1)
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        let r = test_ks(&mut Shifted(Lcg128::new()), 20_000);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn statistic_is_scale_of_discrepancy() {
        // All mass in [0, 0.5]: D ≈ 0.5.
        let mut sample: Vec<f64> = (0..1000).map(|i| 0.5 * (i as f64 + 0.5) / 1000.0).collect();
        let d = ks_statistic_uniform(&mut sample);
        assert!((d - 0.5).abs() < 0.01, "d = {d}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_sample() {
        let _ = ks_statistic_uniform(&mut []);
    }
}
