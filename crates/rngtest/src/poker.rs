//! The poker (partition) test: classify groups of `k` digits by the
//! number of distinct values and χ² against the exact multinomial
//! probabilities (Stirling numbers of the second kind).

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::chi2_sf;

/// Stirling numbers of the second kind `S(n, k)` for small `n`.
///
/// # Panics
///
/// Panics if `k > n` (conventionally zero, but callers here never ask).
#[must_use]
pub fn stirling2(n: usize, k: usize) -> u64 {
    assert!(k <= n, "S(n,k) needs k <= n");
    if n == 0 && k == 0 {
        return 1;
    }
    if k == 0 || k > n {
        return 0;
    }
    // DP over the triangle.
    let mut row = vec![0u64; n + 1];
    row[0] = 1; // S(0,0)
    for i in 1..=n {
        let mut next = vec![0u64; n + 1];
        for j in 1..=i {
            next[j] = j as u64 * row[j] + row[j - 1];
        }
        row = next;
    }
    row[k]
}

/// Probability that a group of `k` digits base `d` contains exactly `r`
/// distinct values: `d(d−1)…(d−r+1) · S(k, r) / d^k`.
#[must_use]
pub fn poker_probability(k: usize, d: u64, r: usize) -> f64 {
    let mut falling = 1.0;
    for i in 0..r {
        falling *= (d - i as u64) as f64;
    }
    falling * stirling2(k, r) as f64 / (d as f64).powi(k as i32)
}

/// Runs the poker test on `groups` groups of `k` digits base `d`.
///
/// # Panics
///
/// Panics unless `2 ≤ k ≤ 8`, `d ≥ 2` and `groups > 0`.
pub fn test_poker<R: UniformSource + ?Sized>(
    rng: &mut R,
    groups: usize,
    k: usize,
    d: u64,
) -> TestResult {
    assert!((2..=8).contains(&k), "group size must be in 2..=8");
    assert!(d >= 2, "need at least two digit values");
    assert!(groups > 0, "need groups");

    let mut counts = vec![0u64; k + 1]; // index = distinct values
    let mut digits = vec![0u64; k];
    for _ in 0..groups {
        for digit in digits.iter_mut() {
            *digit = parmonc_rng::distributions::uniform_index(rng, d);
        }
        let mut seen = std::collections::HashSet::new();
        for &digit in &digits {
            seen.insert(digit);
        }
        counts[seen.len()] += 1;
    }

    let total = groups as f64;
    let mut stat = 0.0;
    let mut df = 0.0f64;
    for (r, &count) in counts
        .iter()
        .enumerate()
        .take(k.min(d as usize) + 1)
        .skip(1)
    {
        let expected = total * poker_probability(k, d, r);
        if expected >= 1.0 {
            let diff = count as f64 - expected;
            stat += diff * diff / expected;
            df += 1.0;
        }
    }
    TestResult::new("poker", stat, chi2_sf(stat, (df - 1.0).max(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn stirling_table() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(4, 1), 1);
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(4, 3), 6);
        assert_eq!(stirling2(4, 4), 1);
        assert_eq!(stirling2(5, 2), 15);
        assert_eq!(stirling2(5, 3), 25);
    }

    #[test]
    fn probabilities_sum_to_one() {
        for (k, d) in [(4usize, 10u64), (5, 8), (3, 2)] {
            let total: f64 = (1..=k.min(d as usize))
                .map(|r| poker_probability(k, d, r))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "k={k} d={d}: {total}");
        }
    }

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        let r = test_poker(&mut rng, 50_000, 5, 10);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn repeating_digits_fail() {
        // A source whose u64 stream has only 2 values gives degenerate
        // poker hands.
        struct TwoValues(bool);
        impl UniformSource for TwoValues {
            fn next_f64(&mut self) -> f64 {
                0.5
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = !self.0;
                if self.0 {
                    u64::MAX / 3
                } else {
                    u64::MAX / 3 * 2
                }
            }
        }
        let r = test_poker(&mut TwoValues(false), 10_000, 5, 10);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "2..=8")]
    fn rejects_huge_groups() {
        let _ = test_poker(&mut Lcg128::new(), 10, 20, 10);
    }
}
