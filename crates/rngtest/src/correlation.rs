//! Serial-correlation test: the lag-k sample autocorrelation of an
//! i.i.d. uniform stream is asymptotically `N(0, 1/n)`.

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::normal_two_sided;

/// Computes the lag-`k` sample autocorrelation of `sample`.
///
/// # Panics
///
/// Panics unless `0 < k < sample.len()`.
#[must_use]
pub fn autocorrelation(sample: &[f64], k: usize) -> f64 {
    assert!(k > 0 && k < sample.len(), "need 0 < lag < n");
    let n = sample.len();
    let mean = sample.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        let d = sample[i] - mean;
        den += d * d;
        if i + k < n {
            num += d * (sample[i + k] - mean);
        }
    }
    num / den
}

/// Runs the lag-`k` serial correlation test on `n` outputs.
pub fn test_serial_correlation<R: UniformSource + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
) -> TestResult {
    let sample: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let rho = autocorrelation(&sample, k);
    let z = rho * (n as f64).sqrt();
    TestResult::new("serial-correlation", z, normal_two_sided(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn lcg128_uncorrelated_at_small_lags() {
        let mut rng = Lcg128::new();
        for k in [1, 2, 3, 7] {
            let r = test_serial_correlation(&mut rng, 100_000, k);
            assert!(r.passes(0.001), "lag {k}: {r:?}");
        }
    }

    #[test]
    fn moving_average_source_fails() {
        // y_i = (u_i + u_{i-1})/2 has lag-1 autocorrelation 0.5.
        struct Ma(Lcg128, f64);
        impl UniformSource for Ma {
            fn next_f64(&mut self) -> f64 {
                let u = self.0.next_f64();
                let y = 0.5 * (u + self.1);
                self.1 = u;
                y
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
        let r = test_serial_correlation(&mut Ma(Lcg128::new(), 0.5), 20_000, 1);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    fn autocorrelation_of_known_sequence() {
        // Perfectly alternating sequence: lag-1 autocorrelation → −1.
        let sample: Vec<f64> = (0..1000).map(|i| f64::from(i % 2)).collect();
        let rho = autocorrelation(&sample, 1);
        assert!(rho < -0.99, "rho {rho}");
        // Lag-2 is +1.
        let rho2 = autocorrelation(&sample, 2);
        assert!(rho2 > 0.99, "rho2 {rho2}");
    }

    #[test]
    #[should_panic(expected = "0 < lag < n")]
    fn rejects_zero_lag() {
        let _ = autocorrelation(&[1.0, 2.0], 0);
    }
}
