//! Marsaglia's birthday-spacings test.
//!
//! Throw `m` "birthdays" uniformly into `n` days, sort them, and count
//! duplicated spacings. The count is asymptotically
//! `Poisson(λ = m³ / (4n))`; repeating the experiment and χ²-ing the
//! observed counts against the Poisson pmf catches lattice structure
//! that uniformity tests miss (the classic LCG killer).

use parmonc_rng::UniformSource;

use crate::battery::TestResult;
use crate::special::chi2_sf;

/// One birthday-spacings experiment: returns the number of values that
/// appear more than once among the sorted spacings.
pub fn duplicated_spacings<R: UniformSource + ?Sized>(rng: &mut R, m: usize, n_days: u64) -> u64 {
    let mut birthdays: Vec<u64> = (0..m)
        .map(|_| parmonc_rng::distributions::uniform_index(rng, n_days))
        .collect();
    birthdays.sort_unstable();
    let mut spacings: Vec<u64> = birthdays.windows(2).map(|w| w[1] - w[0]).collect();
    spacings.sort_unstable();
    // Count elements that are duplicates of their predecessor.
    spacings.windows(2).filter(|w| w[0] == w[1]).count() as u64
}

/// Runs the birthday-spacings test: `experiments` repetitions with `m`
/// birthdays in `n_days` days, χ² against `Poisson(m³/4n)` with tail
/// pooling.
///
/// # Panics
///
/// Panics unless `m ≥ 8`, `n_days ≥ m as u64` and `experiments > 0`.
pub fn test_birthday_spacings<R: UniformSource + ?Sized>(
    rng: &mut R,
    experiments: usize,
    m: usize,
    n_days: u64,
) -> TestResult {
    assert!(m >= 8, "need a non-trivial number of birthdays");
    assert!(n_days >= m as u64, "need more days than birthdays");
    assert!(experiments > 0, "need experiments");

    let lambda = (m as f64).powi(3) / (4.0 * n_days as f64);
    // Bucket counts 0..=t, pooling the tail so expected >= ~5.
    let t = (lambda + 4.0 * lambda.sqrt()).ceil() as usize + 1;
    let mut counts = vec![0u64; t + 1];
    for _ in 0..experiments {
        let k = duplicated_spacings(rng, m, n_days) as usize;
        counts[k.min(t)] += 1;
    }

    // Poisson pmf with pooled tail.
    let mut stat = 0.0;
    let mut df = 0.0f64;
    let mut pmf = (-lambda).exp();
    let mut tail = 1.0;
    for (k, &c) in counts.iter().enumerate() {
        let prob = if k < t {
            let p = pmf;
            tail -= p;
            pmf *= lambda / (k as f64 + 1.0);
            p
        } else {
            tail.max(0.0)
        };
        let expected = experiments as f64 * prob;
        if expected >= 2.0 {
            let d = c as f64 - expected;
            stat += d * d / expected;
            df += 1.0;
        }
    }
    TestResult::new(
        "birthday-spacings",
        stat,
        chi2_sf(stat, (df - 1.0).max(1.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    #[test]
    fn mean_duplicates_matches_poisson_lambda() {
        let mut rng = Lcg128::new();
        let (m, n_days) = (512usize, 1u64 << 24);
        let lambda = (m as f64).powi(3) / (4.0 * n_days as f64); // = 2.0
        let trials = 2000;
        let total: u64 = (0..trials)
            .map(|_| duplicated_spacings(&mut rng, m, n_days))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - lambda).abs() < 0.15, "mean {mean} vs λ {lambda}");
    }

    #[test]
    fn lcg128_passes() {
        let mut rng = Lcg128::new();
        let r = test_birthday_spacings(&mut rng, 2000, 256, 1 << 22);
        assert!(r.passes(0.001), "{r:?}");
    }

    #[test]
    fn coarse_lattice_fails() {
        // A source whose u64 output only populates 8 coarse values:
        // spacings collide constantly.
        struct Coarse(Lcg128);
        impl UniformSource for Coarse {
            fn next_f64(&mut self) -> f64 {
                self.0.next_f64()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64() & 0x7000_0000_0000_0000
            }
        }
        let r = test_birthday_spacings(&mut Coarse(Lcg128::new()), 500, 64, 1 << 20);
        assert!(!r.passes(0.001), "{r:?}");
    }

    #[test]
    #[should_panic(expected = "more days than birthdays")]
    fn rejects_overfull_year() {
        let _ = test_birthday_spacings(&mut Lcg128::new(), 1, 100, 50);
    }
}
