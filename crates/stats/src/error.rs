//! Error type of the statistics layer.

use core::fmt;

/// Errors produced by the statistics layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A matrix accumulator was given a realization of the wrong shape.
    ShapeMismatch {
        /// Expected `(nrow, ncol)`.
        expected: (usize, usize),
        /// Received length (realizations arrive as flat row-major
        /// slices).
        got_len: usize,
    },
    /// Two accumulators with different shapes were merged.
    MergeShapeMismatch {
        /// Shape of the left accumulator.
        left: (usize, usize),
        /// Shape of the right accumulator.
        right: (usize, usize),
    },
    /// A matrix dimension was zero.
    EmptyShape,
    /// A non-finite realization value was observed.
    NonFinite {
        /// Row-major flat index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, got_len } => write!(
                f,
                "realization has {got_len} entries but the accumulator expects {}x{} = {}",
                expected.0,
                expected.1,
                expected.0 * expected.1
            ),
            Self::MergeShapeMismatch { left, right } => write!(
                f,
                "cannot merge accumulators of shapes {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Self::EmptyShape => write!(f, "matrix dimensions must be positive"),
            Self::NonFinite { index, value } => {
                write!(
                    f,
                    "non-finite realization value {value} at flat index {index}"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StatsError::ShapeMismatch {
            expected: (2, 3),
            got_len: 5,
        };
        assert!(e.to_string().contains("2x3"));
        let e = StatsError::MergeShapeMismatch {
            left: (1, 2),
            right: (2, 1),
        };
        assert!(e.to_string().contains("1x2"));
        assert!(StatsError::EmptyShape.to_string().contains("positive"));
        let e = StatsError::NonFinite {
            index: 4,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("index 4"));
    }
}
