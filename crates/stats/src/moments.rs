//! Scalar sample-moment accumulation (paper Section 2.1).
//!
//! The estimator state is the triple `(Σζ, Σζ², L)`; everything the
//! paper reports — mean, second moment, sample variance, absolute and
//! relative stochastic errors — is derived from it on demand.

use crate::confidence::GAMMA_997;

/// Accumulates the sample sums `(Σζ, Σζ², L)` for a scalar random
/// variable.
///
/// Adding is O(1); merging two accumulators (formula (5) in sum form) is
/// exact addition of the triples, so the parallel estimate is *bitwise
/// independent of how realizations were distributed across processors*
/// up to floating-point summation order.
///
/// # Examples
///
/// ```
/// use parmonc_stats::ScalarAccumulator;
///
/// let mut a = ScalarAccumulator::new();
/// let mut b = ScalarAccumulator::new();
/// a.add(1.0);
/// b.add(3.0);
/// a.merge(&b);
/// assert_eq!(a.summary().mean, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScalarAccumulator {
    sum: f64,
    sum_sq: f64,
    count: u64,
}

/// Derived statistics of a [`ScalarAccumulator`] (one row of the
/// paper's `func_ci.dat`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarSummary {
    /// Sample volume `L`.
    pub count: u64,
    /// Sample mean `ζ̄`.
    pub mean: f64,
    /// Sample second moment `ξ̄ = L^{-1} Σζ²`.
    pub second_moment: f64,
    /// Sample variance `σ̂² = ξ̄ − ζ̄²` (clamped at 0 against rounding).
    pub variance: f64,
    /// Absolute stochastic error `ε = 3 σ̂ L^{-1/2}`.
    pub abs_error: f64,
    /// Relative stochastic error `ρ = ε / |ζ̄| · 100 %`
    /// (`f64::INFINITY` when the mean is zero).
    pub rel_error_percent: f64,
}

impl ScalarAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles an accumulator from raw sums (the deserialization
    /// path used by save-point files and worker messages).
    #[must_use]
    pub fn from_sums(sum: f64, sum_sq: f64, count: u64) -> Self {
        Self { sum, sum_sq, count }
    }

    /// Records one realization `ζ_i`.
    #[inline]
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.sum_sq += value * value;
        self.count += 1;
    }

    /// Merges another accumulator into this one (formula (5) in sum
    /// form).
    pub fn merge(&mut self, other: &Self) {
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
    }

    /// Sample volume `L`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw sum `Σζ`.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Raw sum of squares `Σζ²`.
    #[must_use]
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// Whether no realizations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean `ζ̄` (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sample second moment `ξ̄` (0 for an empty accumulator).
    #[must_use]
    pub fn second_moment(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_sq / self.count as f64
        }
    }

    /// Sample variance `σ̂² = ξ̄ − ζ̄²`, clamped at zero against
    /// floating-point cancellation.
    #[must_use]
    pub fn variance(&self) -> f64 {
        (self.second_moment() - self.mean() * self.mean()).max(0.0)
    }

    /// Absolute stochastic error `ε = 3 σ̂ L^{-1/2}` (paper Section 2.1;
    /// confidence level λ = 0.997 so γ(λ) = 3).
    #[must_use]
    pub fn abs_error(&self) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            GAMMA_997 * self.variance().sqrt() / (self.count as f64).sqrt()
        }
    }

    /// Relative stochastic error `ρ = ε / |ζ̄| · 100 %`.
    #[must_use]
    pub fn rel_error_percent(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            f64::INFINITY
        } else {
            self.abs_error() / mean.abs() * 100.0
        }
    }

    /// Computes all derived statistics at once.
    #[must_use]
    pub fn summary(&self) -> ScalarSummary {
        ScalarSummary {
            count: self.count,
            mean: self.mean(),
            second_moment: self.second_moment(),
            variance: self.variance(),
            abs_error: self.abs_error(),
            rel_error_percent: self.rel_error_percent(),
        }
    }
}

impl FromIterator<f64> for ScalarAccumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

impl Extend<f64> for ScalarAccumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    #[test]
    fn empty_accumulator_behaviour() {
        let acc = ScalarAccumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert!(acc.abs_error().is_infinite());
    }

    #[test]
    fn known_small_sample() {
        let acc: ScalarAccumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        let s = acc.summary();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        // population variance of this classic sample is 4.0
        assert!((s.variance - 4.0).abs() < 1e-12);
        // eps = 3 * 2 / sqrt(8)
        assert!((s.abs_error - 6.0 / 8f64.sqrt()).abs() < 1e-12);
        assert!((s.rel_error_percent - s.abs_error / 5.0 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let acc: ScalarAccumulator = std::iter::repeat_n(3.5, 100).collect();
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.abs_error(), 0.0);
        assert_eq!(acc.rel_error_percent(), 0.0);
    }

    #[test]
    fn zero_mean_gives_infinite_relative_error() {
        let acc: ScalarAccumulator = [1.0, -1.0].into_iter().collect();
        assert_eq!(acc.mean(), 0.0);
        assert!(acc.rel_error_percent().is_infinite());
    }

    #[test]
    fn error_shrinks_as_inverse_sqrt_l() {
        // Doubling L four-fold halves eps when variance is stable.
        let mut rng = parmonc_rng::Lcg128::new();
        let small: ScalarAccumulator = (0..10_000).map(|_| rng.next_f64()).collect();
        let large: ScalarAccumulator = (0..160_000).map(|_| rng.next_f64()).collect();
        let ratio = small.abs_error() / large.abs_error();
        assert!((ratio - 4.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn extend_matches_repeated_add() {
        let mut a = ScalarAccumulator::new();
        a.extend([1.0, 2.0, 3.0]);
        let mut b = ScalarAccumulator::new();
        b.add(1.0);
        b.add(2.0);
        b.add(3.0);
        assert_eq!(a, b);
    }

    #[test]
    fn from_sums_round_trip() {
        let acc: ScalarAccumulator = [1.0, 5.0, 9.0].into_iter().collect();
        let rebuilt = ScalarAccumulator::from_sums(acc.sum(), acc.sum_sq(), acc.count());
        assert_eq!(acc, rebuilt);
    }

    proptest! {
        /// Merging is equivalent to having accumulated everything in one
        /// place (the core of formula (5)).
        #[test]
        fn merge_equals_sequential(
            xs in collection::vec(-1e6f64..1e6, 0..100),
            split in 0usize..100
        ) {
            let split = split.min(xs.len());
            let mut left: ScalarAccumulator = xs[..split].iter().copied().collect();
            let right: ScalarAccumulator = xs[split..].iter().copied().collect();
            left.merge(&right);
            let all: ScalarAccumulator = xs.iter().copied().collect();
            prop_assert_eq!(left.count(), all.count());
            prop_assert!((left.sum() - all.sum()).abs() <= 1e-9 * (1.0 + all.sum().abs()));
            prop_assert!((left.sum_sq() - all.sum_sq()).abs() <= 1e-9 * (1.0 + all.sum_sq().abs()));
        }

        /// Merge is commutative on the raw sums.
        #[test]
        fn merge_commutes(
            xs in collection::vec(-1e6f64..1e6, 1..50),
            ys in collection::vec(-1e6f64..1e6, 1..50)
        ) {
            let a: ScalarAccumulator = xs.iter().copied().collect();
            let b: ScalarAccumulator = ys.iter().copied().collect();
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-9 * (1.0 + ab.sum().abs()));
        }

        /// Variance is always non-negative and mean lies within sample
        /// bounds.
        #[test]
        fn derived_stats_are_sane(xs in collection::vec(-1e3f64..1e3, 1..200)) {
            let acc: ScalarAccumulator = xs.iter().copied().collect();
            prop_assert!(acc.variance() >= 0.0);
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(acc.mean() >= lo - 1e-9 && acc.mean() <= hi + 1e-9);
        }
    }
}
