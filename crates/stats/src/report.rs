//! Rendering and parsing of the PARMONC result-file contents
//! (paper Section 3.6).
//!
//! Three plain-text artifacts are produced in
//! `parmonc_data/results/`:
//!
//! * `func.dat` — the matrix of sample means, one matrix row per line;
//! * `func_ci.dat` — per-entry lines `i j mean abs_err rel_err variance`
//!   ("a matrix of the sample means together with matrices of absolute
//!   and relative errors and variances");
//! * `func_log.dat` — `key = value` lines with the total sample volume,
//!   the mean computer time per realization, and the upper bounds
//!   `eps_max`, `rho_max`, `sigma2_max`.
//!
//! Rendering and parsing round-trip (`parse_func ∘ render_func = id` up
//! to float formatting), which is what the resumption machinery relies
//! on.

use core::fmt::Write as _;

use crate::matrix::MatrixSummary;

/// Errors produced when parsing a result file.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line did not have the expected number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Expected field count.
        expected: usize,
        /// Actual field count.
        got: usize,
    },
    /// A field could not be parsed as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A `func_log.dat` key was missing.
    MissingKey(&'static str),
    /// The file had no data lines.
    Empty,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::FieldCount {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            Self::BadNumber { line, token } => {
                write!(f, "line {line}: cannot parse number from {token:?}")
            }
            Self::MissingKey(k) => write!(f, "missing key {k:?}"),
            Self::Empty => write!(f, "file contains no data"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Metadata block of `func_log.dat`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogReport {
    /// Total sample volume `l`.
    pub sample_volume: u64,
    /// Mean computer time per realization, seconds.
    pub mean_time_per_realization: f64,
    /// Upper bound of the absolute errors.
    pub eps_max: f64,
    /// Upper bound of the relative errors (percent).
    pub rho_max: f64,
    /// Upper bound of the sample variances.
    pub sigma2_max: f64,
    /// Number of processors that contributed.
    pub processors: usize,
    /// The "experiments" subsequence number used.
    pub seqnum: u64,
}

/// Renders `func.dat`: the matrix of sample means, one matrix row per
/// line, `%.*e`-formatted with 17 significant digits so parsing is
/// lossless.
#[must_use]
pub fn render_func(summary: &MatrixSummary) -> String {
    let mut out = String::new();
    for i in 0..summary.nrow {
        let row = &summary.means[i * summary.ncol..(i + 1) * summary.ncol];
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{v:.16e}");
        }
        out.push('\n');
    }
    out
}

/// Parses `func.dat` back into the mean matrix (row-major) and the
/// shape.
///
/// # Errors
///
/// Returns [`ParseError`] on ragged rows, unparseable numbers, or an
/// empty file.
pub fn parse_func(text: &str) -> Result<(usize, usize, Vec<f64>), ParseError> {
    let mut means = Vec::new();
    let mut ncol = None;
    let mut nrow = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match ncol {
            None => ncol = Some(fields.len()),
            Some(c) if c != fields.len() => {
                return Err(ParseError::FieldCount {
                    line: lineno + 1,
                    expected: c,
                    got: fields.len(),
                })
            }
            _ => {}
        }
        for tok in fields {
            means.push(tok.parse::<f64>().map_err(|_| ParseError::BadNumber {
                line: lineno + 1,
                token: tok.to_string(),
            })?);
        }
        nrow += 1;
    }
    let ncol = ncol.ok_or(ParseError::Empty)?;
    Ok((nrow, ncol, means))
}

/// Renders `func_ci.dat`: one line per matrix entry with
/// `i j mean abs_err rel_err variance` (1-based indices as in the
/// paper's FORTRAN heritage).
#[must_use]
pub fn render_func_ci(summary: &MatrixSummary) -> String {
    let mut out = String::from("# i j mean abs_error rel_error_percent variance\n");
    for i in 0..summary.nrow {
        for j in 0..summary.ncol {
            let k = i * summary.ncol + j;
            let _ = writeln!(
                out,
                "{} {} {:.16e} {:.16e} {:.16e} {:.16e}",
                i + 1,
                j + 1,
                summary.means[k],
                summary.abs_errors[k],
                summary.rel_errors_percent[k],
                summary.variances[k],
            );
        }
    }
    out
}

/// One parsed row of `func_ci.dat`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiRow {
    /// 1-based row index.
    pub i: usize,
    /// 1-based column index.
    pub j: usize,
    /// Sample mean.
    pub mean: f64,
    /// Absolute error.
    pub abs_error: f64,
    /// Relative error in percent.
    pub rel_error_percent: f64,
    /// Sample variance.
    pub variance: f64,
}

/// Parses `func_ci.dat`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines or an empty file.
pub fn parse_func_ci(text: &str) -> Result<Vec<CiRow>, ParseError> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(ParseError::FieldCount {
                line: lineno + 1,
                expected: 6,
                got: fields.len(),
            });
        }
        let num = |tok: &str| -> Result<f64, ParseError> {
            tok.parse::<f64>().map_err(|_| ParseError::BadNumber {
                line: lineno + 1,
                token: tok.to_string(),
            })
        };
        let idx = |tok: &str| -> Result<usize, ParseError> {
            tok.parse::<usize>().map_err(|_| ParseError::BadNumber {
                line: lineno + 1,
                token: tok.to_string(),
            })
        };
        rows.push(CiRow {
            i: idx(fields[0])?,
            j: idx(fields[1])?,
            mean: num(fields[2])?,
            abs_error: num(fields[3])?,
            rel_error_percent: num(fields[4])?,
            variance: num(fields[5])?,
        });
    }
    if rows.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(rows)
}

/// Renders `func_log.dat` from a summary plus run metadata.
#[must_use]
pub fn render_func_log(log: &LogReport) -> String {
    format!(
        "sample_volume = {}\n\
         mean_time_per_realization_sec = {:.9e}\n\
         eps_max = {:.16e}\n\
         rho_max_percent = {:.16e}\n\
         sigma2_max = {:.16e}\n\
         processors = {}\n\
         seqnum = {}\n",
        log.sample_volume,
        log.mean_time_per_realization,
        log.eps_max,
        log.rho_max,
        log.sigma2_max,
        log.processors,
        log.seqnum,
    )
}

/// Parses `func_log.dat`.
///
/// # Errors
///
/// Returns [`ParseError::MissingKey`] if a required key is absent or
/// [`ParseError::BadNumber`] for malformed values.
pub fn parse_func_log(text: &str) -> Result<LogReport, ParseError> {
    fn lookup(text: &str, key: &'static str) -> Result<String, ParseError> {
        for line in text.lines() {
            if let Some((k, v)) = line.split_once('=') {
                if k.trim() == key {
                    return Ok(v.trim().to_string());
                }
            }
        }
        Err(ParseError::MissingKey(key))
    }
    fn numf(text: &str, key: &'static str) -> Result<f64, ParseError> {
        let tok = lookup(text, key)?;
        tok.parse::<f64>().map_err(|_| ParseError::BadNumber {
            line: 0,
            token: tok,
        })
    }
    fn numu(text: &str, key: &'static str) -> Result<u64, ParseError> {
        let tok = lookup(text, key)?;
        tok.parse::<u64>().map_err(|_| ParseError::BadNumber {
            line: 0,
            token: tok,
        })
    }
    Ok(LogReport {
        sample_volume: numu(text, "sample_volume")?,
        mean_time_per_realization: numf(text, "mean_time_per_realization_sec")?,
        eps_max: numf(text, "eps_max")?,
        rho_max: numf(text, "rho_max_percent")?,
        sigma2_max: numf(text, "sigma2_max")?,
        processors: numu(text, "processors")? as usize,
        seqnum: numu(text, "seqnum")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixAccumulator;

    fn sample_summary() -> MatrixSummary {
        let mut acc = MatrixAccumulator::new(3, 2).unwrap();
        acc.add(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        acc.add(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        acc.add(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        acc.summary()
    }

    #[test]
    fn func_round_trip() {
        let summary = sample_summary();
        let text = render_func(&summary);
        let (nrow, ncol, means) = parse_func(&text).unwrap();
        assert_eq!((nrow, ncol), (3, 2));
        assert_eq!(means, summary.means);
    }

    #[test]
    fn func_has_one_line_per_row() {
        let text = render_func(&sample_summary());
        assert_eq!(text.lines().count(), 3);
        assert_eq!(text.lines().next().unwrap().split_whitespace().count(), 2);
    }

    #[test]
    fn func_ci_round_trip() {
        let summary = sample_summary();
        let text = render_func_ci(&summary);
        let rows = parse_func_ci(&text).unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            let k = (row.i - 1) * summary.ncol + (row.j - 1);
            assert_eq!(row.mean, summary.means[k]);
            assert_eq!(row.abs_error, summary.abs_errors[k]);
            assert_eq!(row.variance, summary.variances[k]);
        }
    }

    #[test]
    fn func_log_round_trip() {
        let log = LogReport {
            sample_volume: 123_456,
            mean_time_per_realization: 7.7,
            eps_max: 0.25,
            rho_max: 3.5,
            sigma2_max: 1.75,
            processors: 8,
            seqnum: 2,
        };
        let parsed = parse_func_log(&render_func_log(&log)).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_func_rejects_ragged_rows() {
        let err = parse_func("1.0 2.0\n3.0\n").unwrap_err();
        assert!(matches!(err, ParseError::FieldCount { line: 2, .. }));
    }

    #[test]
    fn parse_func_rejects_garbage() {
        let err = parse_func("1.0 spam\n").unwrap_err();
        assert!(matches!(err, ParseError::BadNumber { .. }));
    }

    #[test]
    fn parse_func_rejects_empty() {
        assert_eq!(parse_func("\n  \n"), Err(ParseError::Empty));
    }

    #[test]
    fn parse_ci_skips_comments() {
        let text = "# header\n1 1 1.0 0.1 10.0 0.5\n";
        let rows = parse_func_ci(text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].i, 1);
    }

    #[test]
    fn parse_log_reports_missing_key() {
        let err = parse_func_log("sample_volume = 5\n").unwrap_err();
        assert!(matches!(err, ParseError::MissingKey(_)));
    }

    #[test]
    fn error_display() {
        let e = ParseError::FieldCount {
            line: 3,
            expected: 6,
            got: 2,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseError::Empty.to_string().contains("no data"));
    }

    #[test]
    fn infinity_round_trips_through_text() {
        // Entries with zero mean have infinite relative error; the file
        // format must survive that.
        let mut acc = MatrixAccumulator::new(1, 1).unwrap();
        acc.add(&[1.0]).unwrap();
        acc.add(&[-1.0]).unwrap();
        let text = render_func_ci(&acc.summary());
        let rows = parse_func_ci(&text).unwrap();
        assert!(rows[0].rel_error_percent.is_infinite());
    }
}
