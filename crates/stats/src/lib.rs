//! Estimator machinery of the PARMONC reproduction.
//!
//! Paper Section 2.1: a functional of interest `phi ≈ E[zeta]` is
//! estimated by the sample mean over `L` independent realizations, with
//! the second moment tracked alongside so that the sample variance
//! `sigma^2 = xi_bar - zeta_bar^2`, the absolute stochastic error
//! `eps = 3 * sigma * L^{-1/2}` (confidence level 0.997) and the
//! relative error `rho = eps / |zeta_bar| * 100%` come for free.
//!
//! Realizations are matrices `[zeta_ij]` (`nrow × ncol`); after
//! averaging PARMONC produces the matrices of sample means, absolute
//! errors, relative errors and sample variances, plus their upper
//! bounds `eps_max`, `rho_max`, `sigma2_max`.
//!
//! Paper Section 2.2, formula (5): each processor accumulates partial
//! sums and the collector merges them as
//!
//! ```text
//! zeta_bar = l^{-1} * sum_m l_m * zeta_bar^(m),   l = sum_m l_m
//! ```
//!
//! which in sum form is simply adding the processors' `(Σzeta, Σzeta²,
//! l)` triples — the representation this crate stores, making merging
//! exact and associative (see the property tests in [`matrix`]).
//!
//! # Quick start
//!
//! ```
//! use parmonc_stats::ScalarAccumulator;
//!
//! let mut acc = ScalarAccumulator::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     acc.add(x);
//! }
//! let s = acc.summary();
//! assert_eq!(s.mean, 2.5);
//! assert!(s.abs_error > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod confidence;
pub mod error;
pub mod histogram;
pub mod matrix;
pub mod moments;
pub mod report;
pub mod running;

pub use confidence::{confidence_interval, ConfidenceInterval, GAMMA_997};
pub use error::StatsError;
pub use matrix::{MatrixAccumulator, MatrixSummary};
pub use moments::{ScalarAccumulator, ScalarSummary};
