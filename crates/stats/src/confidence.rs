//! Confidence intervals for the sample mean (paper formula (3)).
//!
//! `λ = P(|ζ̄ − Eζ| < γ(λ) σ̂ L^{-1/2})`; the paper uses the standard
//! normal quantile table and fixes `γ(0.997) = 3`. This module provides
//! that constant, the quantile function for other levels, and an
//! interval type.

// Acklam's published coefficients are kept verbatim.
#![allow(clippy::excessive_precision)]

/// `γ(λ)` for the paper's default confidence level `λ = 0.997`
/// (the three-sigma rule).
pub const GAMMA_997: f64 = 3.0;

/// A symmetric confidence interval `mean ± half_width` at a given
/// confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Centre (the sample mean).
    pub mean: f64,
    /// Half-width `γ(λ) σ̂ L^{-1/2}`.
    pub half_width: f64,
    /// The confidence level λ.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `value`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        (self.lo()..=self.hi()).contains(&value)
    }
}

impl core::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.6e} ± {:.6e} (λ = {})",
            self.mean, self.half_width, self.level
        )
    }
}

/// Builds the confidence interval for a sample with the given mean,
/// sample variance and volume at confidence level `level`.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)`, `variance` is negative, or
/// `count` is zero.
///
/// # Examples
///
/// ```
/// use parmonc_stats::confidence_interval;
///
/// let ci = confidence_interval(1.0, 4.0, 400, 0.997);
/// // half width ≈ γ(0.997) * 2 / 20 ≈ 0.2968 (the paper rounds γ to 3)
/// assert!((ci.half_width - 0.2968).abs() < 1e-3);
/// assert!(ci.contains(1.2));
/// ```
#[must_use]
pub fn confidence_interval(mean: f64, variance: f64, count: u64, level: f64) -> ConfidenceInterval {
    assert!(count > 0, "confidence interval needs a non-empty sample");
    assert!(variance >= 0.0, "variance must be non-negative");
    let gamma = normal_quantile_two_sided(level);
    ConfidenceInterval {
        mean,
        half_width: gamma * variance.sqrt() / (count as f64).sqrt(),
        level,
    }
}

/// Returns `γ(λ)` such that `P(|Z| < γ) = λ` for a standard normal `Z`,
/// i.e. the `(1 + λ)/2` quantile of `N(0, 1)`.
///
/// Uses the Acklam rational approximation of the inverse normal CDF
/// (relative error below 1.15e-9) — comfortably more accurate than the
/// printed tables the paper refers to.
///
/// # Panics
///
/// Panics if `level` is outside the open interval `(0, 1)`.
#[must_use]
pub fn normal_quantile_two_sided(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1), got {level}"
    );
    inverse_normal_cdf((1.0 + level) / 2.0)
}

/// The inverse CDF (quantile function) of the standard normal
/// distribution, via Acklam's rational approximation.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_997_is_three_sigma() {
        // The paper: "γ(λ) = 3 for λ = 0.997".
        let g = normal_quantile_two_sided(0.997);
        assert!((g - 2.967_737_9).abs() < 1e-4, "γ(0.997) ≈ 2.9677, got {g}");
        // The tabulated "3" the paper uses corresponds to λ = 0.9973.
        let g = normal_quantile_two_sided(0.997_300_2);
        assert!((g - 3.0).abs() < 1e-3, "got {g}");
    }

    #[test]
    fn known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841_344_7) - 1.0).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.1, 0.25, 0.4] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p={p}");
        }
    }

    #[test]
    fn interval_endpoints_and_membership() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            level: 0.997,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(8.0) && ci.contains(12.0) && ci.contains(10.5));
        assert!(!ci.contains(12.1));
    }

    #[test]
    fn interval_display() {
        let ci = confidence_interval(1.0, 1.0, 100, 0.997);
        let s = ci.to_string();
        assert!(s.contains('±') && s.contains("0.997"));
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn interval_rejects_empty_sample() {
        let _ = confidence_interval(0.0, 1.0, 0, 0.997);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn quantile_rejects_bad_level() {
        let _ = normal_quantile_two_sided(1.0);
    }

    #[test]
    fn coverage_of_three_sigma_interval() {
        // Empirical coverage of the λ=0.997 interval for a uniform mean:
        // estimate the mean of U(0,1) 500 times with L=1000 and check
        // the true mean 0.5 is covered ≈ 99.7% of the time.
        use parmonc_rng::Lcg128;
        let mut rng = Lcg128::new();
        let mut covered = 0;
        let trials = 500;
        for _ in 0..trials {
            let acc: crate::ScalarAccumulator = (0..1000).map(|_| rng.next_f64()).collect();
            let ci = confidence_interval(acc.mean(), acc.variance(), acc.count(), 0.997);
            if ci.contains(0.5) {
                covered += 1;
            }
        }
        // Expected misses ≈ 1.5; allow up to 8.
        assert!(covered >= trials - 8, "covered {covered}/{trials}");
    }
}
