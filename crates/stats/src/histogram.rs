//! A mergeable fixed-bin histogram.
//!
//! PARMONC's result matrices carry means and variances; when the
//! *distribution* of a realization functional matters (e.g. waiting-time
//! tails, Ising magnetization bimodality), workers can accumulate a
//! histogram alongside and the collector merges them with the same
//! replace-then-sum discipline as the moment sums — bin counts are just
//! more sums.

use crate::error::StatsError;

/// A histogram over `[lo, hi)` with `bins` equal cells plus underflow
/// and overflow counters.
///
/// # Examples
///
/// ```
/// use parmonc_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4)?;
/// h.add(0.1);
/// h.add(0.9);
/// h.add(2.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// # Ok::<(), parmonc_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyShape`] if `bins == 0` or the range
    /// is degenerate/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        let range_ok = lo.is_finite() && hi.is_finite() && lo < hi;
        if bins == 0 || !range_ok {
            return Err(StatsError::EmptyShape);
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Range `(lo, hi)`.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of bins (excluding under/overflow).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (including under/overflow; NaNs are
    /// counted as overflow to keep totals conserved).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[start, end)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Records one sample.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi || value.is_nan() {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((value - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Merges another histogram (same range and bin count).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::MergeShapeMismatch`] if range or binning
    /// differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), StatsError> {
        if self.lo != other.lo || self.hi != other.hi || self.bins() != other.bins() {
            return Err(StatsError::MergeShapeMismatch {
                left: (self.bins(), 0),
                right: (other.bins(), 0),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        Ok(())
    }

    /// Empirical probability mass of bin `i` (in-range mass only).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins`.
    #[must_use]
    pub fn mass(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Empirical quantile: the smallest bin upper edge at which the
    /// cumulative in-range mass reaches `q` (ignores under/overflow).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1` and the histogram has in-range data.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
        let in_range: u64 = self.counts.iter().sum();
        assert!(in_range > 0, "histogram has no in-range samples");
        let target = (q * in_range as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bin_edges(i).1;
            }
        }
        self.hi
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for v in [0.0, 0.24, 0.25, 0.5, 0.75, 0.99] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_edges(3), (0.75, 1.0));
    }

    #[test]
    fn under_over_and_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.5);
        h.add(1.0);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_shape_checked() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let b = Histogram::new(0.0, 2.0, 4).unwrap();
        assert!(a.merge(&b).is_err());
        let c = Histogram::new(0.0, 1.0, 8).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let mut h = Histogram::new(0.0, 1.0, 100).unwrap();
        let mut rng = parmonc_rng::Lcg128::new();
        h.extend((0..100_000).map(|_| rng.next_f64()));
        assert!((h.quantile(0.5) - 0.5).abs() < 0.02);
        assert!((h.quantile(0.9) - 0.9).abs() < 0.02);
        assert!((h.quantile(1.0) - 1.0).abs() < 0.011);
    }

    #[test]
    fn mass_sums_to_one_for_in_range_data() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        let mut rng = parmonc_rng::Lcg128::new();
        h.extend((0..10_000).map(|_| rng.next_f64()));
        let total: f64 = (0..10).map(|i| h.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    proptest! {
        /// Merging two histograms equals accumulating everything in
        /// one, and totals are conserved for arbitrary inputs.
        #[test]
        fn merge_equals_sequential(
            xs in collection::vec(-2.0f64..3.0, 0..200),
            split in 0usize..200
        ) {
            let split = split.min(xs.len());
            let mut left = Histogram::new(0.0, 1.0, 7).unwrap();
            left.extend(xs[..split].iter().copied());
            let mut right = Histogram::new(0.0, 1.0, 7).unwrap();
            right.extend(xs[split..].iter().copied());
            left.merge(&right).unwrap();

            let mut all = Histogram::new(0.0, 1.0, 7).unwrap();
            all.extend(xs.iter().copied());
            prop_assert_eq!(left, all);
        }

        /// Every sample lands in exactly one counter.
        #[test]
        fn totals_conserved(xs in collection::vec(any::<f64>(), 0..200)) {
            let mut h = Histogram::new(-1.0, 1.0, 13).unwrap();
            let finite = xs.iter().filter(|x| !x.is_infinite()).count();
            h.extend(xs.iter().copied().filter(|x| !x.is_infinite()));
            prop_assert_eq!(h.count(), finite as u64);
        }
    }
}
