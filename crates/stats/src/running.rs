//! Welford-style online accumulation, as a numerically robust
//! cross-check of the paper's raw-sum representation.
//!
//! PARMONC stores `(Σζ, Σζ², L)` because that is what processors can
//! ship and rank 0 can merge exactly (formula (5)). The textbook
//! objection is catastrophic cancellation in `ξ̄ − ζ̄²` when the
//! coefficient of variation is tiny; [`WelfordAccumulator`] implements
//! the merge-able Welford/Chan recurrence so tests (and DESIGN.md
//! ablation #4) can quantify when the difference matters.

/// Online mean/variance accumulator using the parallel (Chan et al.)
/// Welford recurrence; mergeable like the raw-sum accumulator.
///
/// # Examples
///
/// ```
/// use parmonc_stats::running::WelfordAccumulator;
///
/// let mut acc = WelfordAccumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WelfordAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one realization.
    #[inline]
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Merges another accumulator (Chan's pairwise update).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Sample volume.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `M2 / n` — the same convention as the
    /// paper's `σ̂² = ξ̄ − ζ̄²` (0 when empty).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }
}

impl FromIterator<f64> for WelfordAccumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::ScalarAccumulator;
    use parmonc_testkit::prelude::*;

    #[test]
    fn empty_behaviour() {
        let acc = WelfordAccumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn matches_naive_on_well_conditioned_data() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let w: WelfordAccumulator = xs.iter().copied().collect();
        let n: ScalarAccumulator = xs.iter().copied().collect();
        assert!((w.mean() - n.mean()).abs() < 1e-10);
        assert!((w.variance() - n.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_survives_large_offset() {
        // Mean 1e9, sd 1: naive sums lose ~7 digits of the variance;
        // Welford keeps it. This quantifies the design trade-off the
        // paper makes for mergeability.
        let xs: Vec<f64> = (0..10_000).map(|i| 1e9 + f64::from(i % 3) - 1.0).collect();
        let w: WelfordAccumulator = xs.iter().copied().collect();
        // 10000 = 3*3333 + 1, so -1 occurs 3334 times and 0, 1 occur
        // 3333 times each: variance = 6667/10000 - (1/10000)^2.
        let truth = 0.6667 - 1e-8;
        assert!((w.variance() - truth).abs() < 1e-6, "{}", w.variance());
    }

    #[test]
    fn merge_with_empty_both_ways() {
        let full: WelfordAccumulator = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = full;
        a.merge(&WelfordAccumulator::new());
        assert_eq!(a, full);
        let mut b = WelfordAccumulator::new();
        b.merge(&full);
        assert_eq!(b, full);
    }

    proptest! {
        /// Welford and naive agree on bounded data.
        #[test]
        fn agrees_with_naive(xs in collection::vec(-1e3f64..1e3, 1..300)) {
            let w: WelfordAccumulator = xs.iter().copied().collect();
            let n: ScalarAccumulator = xs.iter().copied().collect();
            prop_assert!((w.mean() - n.mean()).abs() < 1e-8);
            prop_assert!((w.variance() - n.variance()).abs() < 1e-6 * (1.0 + n.variance()));
        }

        /// Merging equals sequential accumulation.
        #[test]
        fn merge_equals_sequential(
            xs in collection::vec(-1e3f64..1e3, 0..100),
            split in 0usize..100
        ) {
            let split = split.min(xs.len());
            let mut left: WelfordAccumulator = xs[..split].iter().copied().collect();
            let right: WelfordAccumulator = xs[split..].iter().copied().collect();
            left.merge(&right);
            let all: WelfordAccumulator = xs.iter().copied().collect();
            prop_assert_eq!(left.count(), all.count());
            prop_assert!((left.mean() - all.mean()).abs() < 1e-9 * (1.0 + all.mean().abs()));
            prop_assert!((left.variance() - all.variance()).abs() < 1e-6 * (1.0 + all.variance()));
        }
    }
}
