//! Matrix-valued realizations and their averaging (paper Section 2.1).
//!
//! A realization is a matrix `[ζ_ij]`, `1 ≤ i ≤ nrow`, `1 ≤ j ≤ ncol`
//! (in the performance test: the SDE solution recorded at 1000 time
//! points × 2 components). The accumulator stores `Σζ_ij` and `Σζ²_ij`
//! entrywise plus the common sample volume `l`, exactly the payload a
//! processor periodically ships to rank 0 (Section 2.2).

use crate::error::StatsError;
use crate::moments::ScalarAccumulator;

/// Entrywise accumulator of matrix realizations.
///
/// Stores the two sum matrices and the sample volume; realizations are
/// supplied as flat row-major slices of length `nrow * ncol`.
///
/// # Examples
///
/// ```
/// use parmonc_stats::MatrixAccumulator;
///
/// let mut acc = MatrixAccumulator::new(2, 2)?;
/// acc.add(&[1.0, 2.0, 3.0, 4.0])?;
/// acc.add(&[3.0, 2.0, 1.0, 0.0])?;
/// let s = acc.summary();
/// assert_eq!(s.means, vec![2.0, 2.0, 2.0, 2.0]);
/// # Ok::<(), parmonc_stats::StatsError>(())
/// ```
#[derive(Debug, PartialEq)]
pub struct MatrixAccumulator {
    nrow: usize,
    ncol: usize,
    sums: Vec<f64>,
    sums_sq: Vec<f64>,
    count: u64,
}

impl Clone for MatrixAccumulator {
    fn clone(&self) -> Self {
        Self {
            nrow: self.nrow,
            ncol: self.ncol,
            sums: self.sums.clone(),
            sums_sq: self.sums_sq.clone(),
            count: self.count,
        }
    }

    /// Overwrites `self` reusing its existing allocations when the
    /// shapes match — the collector refreshes per-worker snapshots in
    /// place through this, so steady-state collection does not
    /// allocate.
    fn clone_from(&mut self, source: &Self) {
        self.nrow = source.nrow;
        self.ncol = source.ncol;
        self.sums.clone_from(&source.sums);
        self.sums_sq.clone_from(&source.sums_sq);
        self.count = source.count;
    }
}

/// Elementwise `dst[k] += src[k]` in fixed-width chunks so LLVM can
/// emit vector adds. Bitwise identical to the plain scalar loop: each
/// lane touches only its own element, so no floating-point operation
/// is reordered or reassociated.
fn add_assign_slices(dst: &mut [f64], src: &[f64]) {
    const LANES: usize = 8;
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for k in 0..LANES {
            dc[k] += sc[k];
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *x += y;
    }
}

/// Entrywise `sums[k] += z[k]; sums_sq[k] += z[k]²` in fixed-width
/// chunks (same bitwise-safety argument as [`add_assign_slices`]).
fn accumulate_realization(sums: &mut [f64], sums_sq: &mut [f64], z: &[f64]) {
    const LANES: usize = 8;
    let mut s = sums.chunks_exact_mut(LANES);
    let mut q = sums_sq.chunks_exact_mut(LANES);
    let mut zc = z.chunks_exact(LANES);
    for ((sc, qc), c) in s.by_ref().zip(q.by_ref()).zip(zc.by_ref()) {
        for k in 0..LANES {
            let v = c[k];
            sc[k] += v;
            qc[k] += v * v;
        }
    }
    for ((x, y), &v) in s
        .into_remainder()
        .iter_mut()
        .zip(q.into_remainder().iter_mut())
        .zip(zc.remainder())
    {
        *x += v;
        *y += v * v;
    }
}

/// The full averaged output for a matrix estimator: the four matrices
/// PARMONC writes to `func.dat`/`func_ci.dat` plus the three upper
/// bounds from `func_log.dat`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSummary {
    /// Number of rows.
    pub nrow: usize,
    /// Number of columns.
    pub ncol: usize,
    /// Sample volume `l`.
    pub count: u64,
    /// Matrix of sample means `[ζ̄_ij]`, row-major.
    pub means: Vec<f64>,
    /// Matrix of absolute errors `[ε_ij]`, row-major.
    pub abs_errors: Vec<f64>,
    /// Matrix of relative errors `[ρ_ij]` in percent, row-major.
    pub rel_errors_percent: Vec<f64>,
    /// Matrix of sample variances `[σ̂²_ij]`, row-major.
    pub variances: Vec<f64>,
    /// `ε_max = max_ij ε_ij`.
    pub eps_max: f64,
    /// `ρ_max = max_ij ρ_ij` (ignores entries with zero mean, whose
    /// relative error is undefined; `0.0` if all means are zero).
    pub rho_max: f64,
    /// `σ²_max = max_ij σ̂²_ij`.
    pub sigma2_max: f64,
}

impl MatrixAccumulator {
    /// Creates an empty accumulator of shape `nrow × ncol`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyShape`] if either dimension is zero.
    pub fn new(nrow: usize, ncol: usize) -> Result<Self, StatsError> {
        if nrow == 0 || ncol == 0 {
            return Err(StatsError::EmptyShape);
        }
        Ok(Self {
            nrow,
            ncol,
            sums: vec![0.0; nrow * ncol],
            sums_sq: vec![0.0; nrow * ncol],
            count: 0,
        })
    }

    /// Reassembles an accumulator from raw parts (deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyShape`] for zero dimensions and
    /// [`StatsError::ShapeMismatch`] if the vectors do not have
    /// `nrow * ncol` entries.
    pub fn from_parts(
        nrow: usize,
        ncol: usize,
        sums: Vec<f64>,
        sums_sq: Vec<f64>,
        count: u64,
    ) -> Result<Self, StatsError> {
        if nrow == 0 || ncol == 0 {
            return Err(StatsError::EmptyShape);
        }
        // A corrupted frame can claim an absurd shape whose element
        // count overflows; that can never match the actual vectors.
        let len = nrow.checked_mul(ncol);
        if len != Some(sums.len()) || len != Some(sums_sq.len()) {
            return Err(StatsError::ShapeMismatch {
                expected: (nrow, ncol),
                got_len: sums.len().min(sums_sq.len()),
            });
        }
        Ok(Self {
            nrow,
            ncol,
            sums,
            sums_sq,
            count,
        })
    }

    /// Shape `(nrow, ncol)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrow, self.ncol)
    }

    /// Sample volume `l`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no realizations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw sum matrix `[Σζ_ij]`, row-major.
    #[must_use]
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Raw sum-of-squares matrix `[Σζ²_ij]`, row-major.
    #[must_use]
    pub fn sums_sq(&self) -> &[f64] {
        &self.sums_sq
    }

    /// Mutable access to the raw state
    /// (`[Σζ_ij]`, `[Σζ²_ij]`, `l`) for in-place deserialization —
    /// the same trust level as [`MatrixAccumulator::from_parts`], but
    /// reusing this accumulator's allocations. The shape is fixed;
    /// only the contents may be overwritten.
    #[must_use]
    pub fn raw_parts_mut(&mut self) -> (&mut [f64], &mut [f64], &mut u64) {
        (&mut self.sums, &mut self.sums_sq, &mut self.count)
    }

    /// Records one matrix realization given as a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ShapeMismatch`] if `realization` does not
    /// have `nrow * ncol` entries, or [`StatsError::NonFinite`] if any
    /// entry is NaN/infinite (the accumulator is left unchanged).
    pub fn add(&mut self, realization: &[f64]) -> Result<(), StatsError> {
        if realization.len() != self.sums.len() {
            return Err(StatsError::ShapeMismatch {
                expected: (self.nrow, self.ncol),
                got_len: realization.len(),
            });
        }
        if let Some((index, &value)) = realization.iter().enumerate().find(|(_, v)| !v.is_finite())
        {
            return Err(StatsError::NonFinite { index, value });
        }
        accumulate_realization(&mut self.sums, &mut self.sums_sq, realization);
        self.count += 1;
        Ok(())
    }

    /// Merges another accumulator into this one (formula (5) in sum
    /// form).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::MergeShapeMismatch`] if the shapes differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), StatsError> {
        if self.shape() != other.shape() {
            return Err(StatsError::MergeShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        add_assign_slices(&mut self.sums, &other.sums);
        add_assign_slices(&mut self.sums_sq, &other.sums_sq);
        self.count += other.count;
        Ok(())
    }

    /// Extracts the scalar accumulator of entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrow` or `j >= ncol`.
    #[must_use]
    pub fn entry(&self, i: usize, j: usize) -> ScalarAccumulator {
        assert!(
            i < self.nrow && j < self.ncol,
            "entry ({i},{j}) out of bounds"
        );
        let k = i * self.ncol + j;
        ScalarAccumulator::from_sums(self.sums[k], self.sums_sq[k], self.count)
    }

    /// Computes the full averaged output: the four matrices and the
    /// three upper bounds of the paper's Section 2.1.
    #[must_use]
    pub fn summary(&self) -> MatrixSummary {
        let n = self.sums.len();
        let mut means = vec![0.0; n];
        let mut abs_errors = vec![0.0; n];
        let mut rel_errors = vec![0.0; n];
        let mut variances = vec![0.0; n];
        let mut eps_max = 0.0f64;
        let mut rho_max = 0.0f64;
        let mut sigma2_max = 0.0f64;

        for k in 0..n {
            let acc = ScalarAccumulator::from_sums(self.sums[k], self.sums_sq[k], self.count);
            means[k] = acc.mean();
            variances[k] = acc.variance();
            abs_errors[k] = if self.count == 0 {
                0.0
            } else {
                acc.abs_error()
            };
            rel_errors[k] = acc.rel_error_percent();
            eps_max = eps_max.max(abs_errors[k]);
            sigma2_max = sigma2_max.max(variances[k]);
            if rel_errors[k].is_finite() {
                rho_max = rho_max.max(rel_errors[k]);
            }
        }

        MatrixSummary {
            nrow: self.nrow,
            ncol: self.ncol,
            count: self.count,
            means,
            abs_errors,
            rel_errors_percent: rel_errors,
            variances,
            eps_max,
            rho_max,
            sigma2_max,
        }
    }
}

impl MatrixSummary {
    /// The sample mean of entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn mean(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrow && j < self.ncol);
        self.means[i * self.ncol + j]
    }

    /// The absolute error of entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn abs_error(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrow && j < self.ncol);
        self.abs_errors[i * self.ncol + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_testkit::prelude::*;

    fn acc2x2() -> MatrixAccumulator {
        MatrixAccumulator::new(2, 2).unwrap()
    }

    #[test]
    fn rejects_empty_shapes() {
        assert_eq!(MatrixAccumulator::new(0, 3), Err(StatsError::EmptyShape));
        assert_eq!(MatrixAccumulator::new(3, 0), Err(StatsError::EmptyShape));
    }

    #[test]
    fn rejects_wrong_length_realization() {
        let mut acc = acc2x2();
        let err = acc.add(&[1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, StatsError::ShapeMismatch { got_len: 3, .. }));
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn rejects_non_finite_and_leaves_state_unchanged() {
        let mut acc = acc2x2();
        acc.add(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let before = acc.clone();
        let err = acc.add(&[1.0, f64::NAN, 1.0, 1.0]).unwrap_err();
        assert!(matches!(err, StatsError::NonFinite { index: 1, .. }));
        assert_eq!(acc, before);
    }

    #[test]
    fn entrywise_means_and_errors() {
        let mut acc = acc2x2();
        acc.add(&[1.0, 10.0, 100.0, -1.0]).unwrap();
        acc.add(&[3.0, 10.0, 300.0, 1.0]).unwrap();
        let s = acc.summary();
        assert_eq!(s.means, vec![2.0, 10.0, 200.0, 0.0]);
        // Entry (0,1) is constant → zero variance & errors.
        assert_eq!(s.variances[1], 0.0);
        assert_eq!(s.abs_errors[1], 0.0);
        // Entry (1,1) has zero mean → infinite relative error, but
        // rho_max must ignore it.
        assert!(s.rel_errors_percent[3].is_infinite());
        assert!(s.rho_max.is_finite());
        // eps_max comes from the largest-variance entry (1,0).
        assert_eq!(s.eps_max, s.abs_errors[2]);
        assert_eq!(s.sigma2_max, s.variances[2]);
    }

    #[test]
    fn accessors() {
        let mut acc = acc2x2();
        acc.add(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = acc.summary();
        assert_eq!(s.mean(1, 0), 3.0);
        assert_eq!(s.abs_error(0, 0), 0.0);
        assert_eq!(acc.entry(0, 1).mean(), 2.0);
    }

    #[test]
    fn merge_shape_mismatch() {
        let mut a = acc2x2();
        let b = MatrixAccumulator::new(2, 3).unwrap();
        assert!(matches!(
            a.merge(&b),
            Err(StatsError::MergeShapeMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_validation() {
        assert!(MatrixAccumulator::from_parts(2, 2, vec![0.0; 4], vec![0.0; 4], 0).is_ok());
        assert!(matches!(
            MatrixAccumulator::from_parts(2, 2, vec![0.0; 3], vec![0.0; 4], 0),
            Err(StatsError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            MatrixAccumulator::from_parts(0, 2, vec![], vec![], 0),
            Err(StatsError::EmptyShape)
        ));
    }

    #[test]
    fn clone_from_reuses_allocations_and_matches_clone() {
        let mut src = acc2x2();
        src.add(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut dst = acc2x2();
        let sums_ptr = dst.sums().as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst, src.clone());
        assert_eq!(
            dst.sums().as_ptr(),
            sums_ptr,
            "same-shape clone_from must not reallocate"
        );
    }

    #[test]
    fn chunked_loops_match_scalar_reference() {
        // Lengths around the 8-lane boundary, including a remainder.
        for n in [1usize, 7, 8, 9, 16, 19] {
            let z: Vec<f64> = (0..n).map(|k| 0.1 + k as f64).collect();
            let mut acc = MatrixAccumulator::new(1, n).unwrap();
            acc.add(&z).unwrap();
            acc.add(&z).unwrap();
            let mut other = MatrixAccumulator::new(1, n).unwrap();
            other.add(&z).unwrap();
            acc.merge(&other).unwrap();
            for (k, zk) in z.iter().enumerate() {
                // Three adds of the same value: exact scalar reference.
                let s = zk + zk + zk;
                let q = zk * zk + zk * zk + zk * zk;
                assert_eq!(acc.sums()[k], s, "n={n} k={k}");
                assert_eq!(acc.sums_sq()[k], q, "n={n} k={k}");
            }
            assert_eq!(acc.count(), 3);
        }
    }

    #[test]
    fn summary_of_empty_accumulator() {
        let s = acc2x2().summary();
        assert_eq!(s.count, 0);
        assert!(s.means.iter().all(|m| *m == 0.0));
        assert_eq!(s.eps_max, 0.0);
    }

    proptest! {
        /// Distributing realizations over M "processors" and merging
        /// reproduces the single-processor sums — the heart of the
        /// paper's claim that the parallel estimator (4) converges to
        /// the same value.
        #[test]
        fn merge_is_distribution_invariant(
            rows in collection::vec(
                collection::vec(-1e3f64..1e3, 6),
                1..40
            ),
            m in 1usize..6
        ) {
            // Sequential reference.
            let mut reference = MatrixAccumulator::new(2, 3).unwrap();
            for r in &rows {
                reference.add(r).unwrap();
            }
            // Round-robin over m processors, then merge.
            let mut parts: Vec<MatrixAccumulator> =
                (0..m).map(|_| MatrixAccumulator::new(2, 3).unwrap()).collect();
            for (i, r) in rows.iter().enumerate() {
                parts[i % m].add(r).unwrap();
            }
            let mut merged = MatrixAccumulator::new(2, 3).unwrap();
            for p in &parts {
                merged.merge(p).unwrap();
            }
            prop_assert_eq!(merged.count(), reference.count());
            for k in 0..6 {
                prop_assert!(
                    (merged.sums()[k] - reference.sums()[k]).abs()
                        <= 1e-9 * (1.0 + reference.sums()[k].abs())
                );
                prop_assert!(
                    (merged.sums_sq()[k] - reference.sums_sq()[k]).abs()
                        <= 1e-9 * (1.0 + reference.sums_sq()[k].abs())
                );
            }
        }

        /// Merging with an empty accumulator is the identity.
        #[test]
        fn merge_empty_is_identity(
            rows in collection::vec(collection::vec(-1e3f64..1e3, 4), 1..20)
        ) {
            let mut acc = MatrixAccumulator::new(2, 2).unwrap();
            for r in &rows {
                acc.add(r).unwrap();
            }
            let before = acc.clone();
            acc.merge(&MatrixAccumulator::new(2, 2).unwrap()).unwrap();
            prop_assert_eq!(acc, before);
        }

        /// Variances are non-negative for arbitrary data.
        #[test]
        fn variances_non_negative(
            rows in collection::vec(collection::vec(-1e6f64..1e6, 4), 1..30)
        ) {
            let mut acc = MatrixAccumulator::new(2, 2).unwrap();
            for r in &rows {
                acc.add(r).unwrap();
            }
            prop_assert!(acc.summary().variances.iter().all(|v| *v >= 0.0));
        }
    }
}
