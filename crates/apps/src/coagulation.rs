//! Direct simulation Monte Carlo for Smoluchowski coagulation — paper
//! Section 2.1 cites "solving the Boltzmann and Smoluchowski's
//! equations" among the method's classic applications (and Marchenko's
//! own group used MONC for exactly this).
//!
//! The model: `n0` monomers in a well-mixed volume; any pair coalesces
//! at constant rate (`K(i, j) = K` — the constant kernel). With `k`
//! clusters present the total coalescence rate is `K·k(k−1)/2`; each
//! event reduces the cluster count by one.
//!
//! For the constant kernel the mean-field Smoluchowski solution gives
//! the expected cluster count in closed form:
//! `E N(t) ≈ n0 / (1 + K n0 t / 2)` (exact as `n0 → ∞`), which the
//! tests compare against. One realization records the cluster count at
//! `points` observation times (a `points × 1` matrix), normalized by
//! `n0`.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::UniformSource;

/// Constant-kernel coagulation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantKernelCoagulation {
    /// Initial number of monomers `n0`.
    pub initial_clusters: u64,
    /// Pairwise coalescence rate `K` (scaled so that `K·n0` is O(1):
    /// the natural Marcus–Lushnikov normalization).
    pub kernel: f64,
    /// Observation horizon `T`.
    pub horizon: f64,
    /// Number of equally spaced observation times.
    pub points: usize,
}

impl ConstantKernelCoagulation {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `initial_clusters ≥ 2`, `kernel > 0`,
    /// `horizon > 0` and `points > 0`.
    #[must_use]
    pub fn new(initial_clusters: u64, kernel: f64, horizon: f64, points: usize) -> Self {
        assert!(initial_clusters >= 2, "need at least two clusters");
        assert!(kernel > 0.0, "kernel must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(points > 0, "need observation times");
        Self {
            initial_clusters,
            kernel,
            horizon,
            points,
        }
    }

    /// The `i`-th observation time (0-based).
    #[must_use]
    pub fn observation_time(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.horizon / self.points as f64
    }

    /// Mean-field cluster count fraction `N(t)/n0 = 1/(1 + K n0 t/2)`.
    #[must_use]
    pub fn mean_field_fraction(&self, t: f64) -> f64 {
        1.0 / (1.0 + self.kernel * self.initial_clusters as f64 * t / 2.0)
    }

    /// Runs one Marcus–Lushnikov trajectory, writing `N(t_i)/n0` into
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points`.
    pub fn simulate_into<R: UniformSource + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.points, "one output entry per time");
        let n0 = self.initial_clusters as f64;
        let mut clusters = self.initial_clusters;
        let mut t = 0.0f64;
        let mut next_obs = 0usize;
        loop {
            // With k clusters the next coalescence is exponential with
            // rate K·k(k−1)/2 (Marcus–Lushnikov process).
            let k = clusters as f64;
            let rate = self.kernel * k * (k - 1.0) / 2.0;
            let t_next = if rate > 0.0 {
                t - rng.next_f64().ln() / rate
            } else {
                f64::INFINITY
            };
            while next_obs < self.points && self.observation_time(next_obs) <= t_next {
                out[next_obs] = clusters as f64 / n0;
                next_obs += 1;
            }
            if next_obs >= self.points {
                return;
            }
            t = t_next;
            clusters -= 1;
        }
    }
}

impl Realize for ConstantKernelCoagulation {
    /// Output: `points × 1` matrix of `N(t_i)/n0`.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        self.simulate_into(rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;
    use parmonc_stats::MatrixAccumulator;

    fn model() -> ConstantKernelCoagulation {
        // K·n0 = 1: gelation-free, O(1) dynamics on [0, 8].
        ConstantKernelCoagulation::new(1_000, 1e-3, 8.0, 8)
    }

    fn estimate(m: &ConstantKernelCoagulation, trials: usize) -> MatrixAccumulator {
        let mut rng = Lcg128::new();
        let mut acc = MatrixAccumulator::new(m.points, 1).unwrap();
        let mut out = vec![0.0; m.points];
        for _ in 0..trials {
            m.simulate_into(&mut rng, &mut out);
            acc.add(&out).unwrap();
        }
        acc
    }

    #[test]
    fn tracks_mean_field_solution() {
        let m = model();
        let acc = estimate(&m, 2_000);
        let s = acc.summary();
        for i in 0..m.points {
            let t = m.observation_time(i);
            let mean = s.mean(i, 0);
            let mf = m.mean_field_fraction(t);
            // Finite-size correction is O(1/n0) = 0.1%; MC noise tiny.
            assert!(
                (mean - mf).abs() < 0.01 * mf + 0.003,
                "t={t}: {mean} vs {mf}"
            );
        }
    }

    #[test]
    fn cluster_count_is_monotone_decreasing() {
        let m = model();
        let mut rng = Lcg128::new();
        let mut out = vec![0.0; m.points];
        for _ in 0..100 {
            m.simulate_into(&mut rng, &mut out);
            for w in out.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "coagulation cannot create clusters");
            }
            assert!(out.iter().all(|f| *f > 0.0 && *f <= 1.0));
        }
    }

    #[test]
    fn halving_time_matches_theory() {
        // N(t)/n0 = 1/2 at t = 2/(K n0) = 2.0 for our parameters.
        let m = model();
        let acc = estimate(&m, 2_000);
        let s = acc.summary();
        // observation index for t = 2.0 is i = 1 (t_i = (i+1)).
        let frac = s.mean(1, 0);
        assert!((frac - 0.5).abs() < 0.01, "N(2)/n0 = {frac}");
    }

    #[test]
    fn single_pair_coalesces_eventually() {
        let m = ConstantKernelCoagulation::new(2, 10.0, 50.0, 1);
        let mut rng = Lcg128::new();
        let mut out = [0.0];
        let mut saw_merged = false;
        for _ in 0..50 {
            m.simulate_into(&mut rng, &mut out);
            if (out[0] - 0.5).abs() < 1e-12 {
                saw_merged = true;
            }
        }
        assert!(saw_merged, "K=10 over T=50 almost surely coalesces");
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let m = model();
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = vec![0.0; m.points];
        m.realize(&mut s, &mut out);
        assert!(out.iter().all(|f| *f > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn rejects_single_cluster() {
        let _ = ConstantKernelCoagulation::new(1, 1.0, 1.0, 1);
    }
}
