//! A 2-D Ising model with Metropolis sampling — the statistical-physics
//! workload (paper Section 2.1 cites "the Metropolis method, the Ising
//! model" as canonical Monte Carlo).
//!
//! Spins `s ∈ {−1, +1}` live on an `n × n` torus with energy
//! `E = −J Σ_<ij> s_i s_j`. One *realization* is an independent chain:
//! start from a random configuration, run `sweeps` Metropolis sweeps at
//! inverse temperature β, then record the per-site energy and the
//! absolute magnetization per site as a 1×2 matrix. Averaging
//! realizations across PARMONC processors gives independent-chain
//! estimates with honest error bars — exactly the "independent
//! realizations of a random object" model of the paper.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::distributions::uniform_index;
use parmonc_rng::UniformSource;

/// The 2-D Ising workload configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsingModel {
    /// Lattice side `n` (n×n torus).
    pub side: usize,
    /// Inverse temperature `β = J / (k_B T)` (coupling folded in).
    pub beta: f64,
    /// Metropolis sweeps per realization.
    pub sweeps: usize,
}

impl IsingModel {
    /// The critical inverse temperature of the infinite 2-D Ising model,
    /// `β_c = ln(1 + √2) / 2 ≈ 0.4407`.
    pub const BETA_CRITICAL: f64 = 0.440_686_793_509_772;

    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `side < 2`, `beta < 0`, or `sweeps == 0`.
    #[must_use]
    pub fn new(side: usize, beta: f64, sweeps: usize) -> Self {
        assert!(side >= 2, "lattice side must be at least 2");
        assert!(beta >= 0.0, "inverse temperature must be non-negative");
        assert!(sweeps > 0, "need at least one sweep");
        Self { side, beta, sweeps }
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.side + c
    }

    fn neighbour_sum(&self, spins: &[i8], r: usize, c: usize) -> i32 {
        let n = self.side;
        let up = spins[self.idx((r + n - 1) % n, c)] as i32;
        let down = spins[self.idx((r + 1) % n, c)] as i32;
        let left = spins[self.idx(r, (c + n - 1) % n)] as i32;
        let right = spins[self.idx(r, (c + 1) % n)] as i32;
        up + down + left + right
    }

    /// Runs one independent chain, returning
    /// `(energy_per_site, |magnetization|_per_site)`.
    pub fn sample_chain<R: UniformSource + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let n = self.side;
        let sites = n * n;
        // Random initial configuration.
        let mut spins: Vec<i8> = (0..sites)
            .map(|_| if rng.next_f64() < 0.5 { -1 } else { 1 })
            .collect();

        for _ in 0..self.sweeps {
            for _ in 0..sites {
                let site = uniform_index(rng, sites as u64) as usize;
                let (r, c) = (site / n, site % n);
                let delta_e =
                    2.0 * f64::from(spins[site]) * f64::from(self.neighbour_sum(&spins, r, c));
                if delta_e <= 0.0 || rng.next_f64() < (-self.beta * delta_e).exp() {
                    spins[site] = -spins[site];
                }
            }
        }

        let mut energy = 0i64;
        let mut mag = 0i64;
        for r in 0..n {
            for c in 0..n {
                let s = i64::from(spins[self.idx(r, c)]);
                // Count each bond once: right and down neighbours.
                let right = i64::from(spins[self.idx(r, (c + 1) % n)]);
                let down = i64::from(spins[self.idx((r + 1) % n, c)]);
                energy -= s * (right + down);
                mag += s;
            }
        }
        (
            energy as f64 / sites as f64,
            (mag as f64 / sites as f64).abs(),
        )
    }
}

impl Realize for IsingModel {
    /// Output: 1×2 matrix `[energy_per_site, |m|]`.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        let (e, m) = self.sample_chain(rng);
        out[0] = e;
        out[1] = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    fn mean_of_chains(model: &IsingModel, chains: usize) -> (f64, f64) {
        let mut rng = Lcg128::new();
        let (mut e_sum, mut m_sum) = (0.0, 0.0);
        for _ in 0..chains {
            let (e, m) = model.sample_chain(&mut rng);
            e_sum += e;
            m_sum += m;
        }
        (e_sum / chains as f64, m_sum / chains as f64)
    }

    #[test]
    fn infinite_temperature_limit() {
        // β = 0: spins are free; E/site → 0, |m| → O(1/n) (CLT).
        let model = IsingModel::new(16, 0.0, 10);
        let (e, m) = mean_of_chains(&model, 200);
        assert!(e.abs() < 0.1, "energy {e}");
        assert!(m < 0.15, "magnetization {m}");
    }

    #[test]
    fn low_temperature_orders() {
        // β well above critical: nearly all spins aligned; E/site → -2,
        // |m| → 1.
        let model = IsingModel::new(8, 1.0, 200);
        let (e, m) = mean_of_chains(&model, 30);
        assert!(e < -1.7, "energy {e}");
        assert!(m > 0.9, "magnetization {m}");
    }

    #[test]
    fn magnetization_grows_through_transition() {
        // |m| at β = 0.6 (ordered) must exceed |m| at β = 0.2
        // (disordered) — the qualitative phase-transition signature.
        let hot = IsingModel::new(12, 0.2, 60);
        let cold = IsingModel::new(12, 0.6, 60);
        let (_, m_hot) = mean_of_chains(&hot, 40);
        let (_, m_cold) = mean_of_chains(&cold, 40);
        assert!(m_cold > m_hot + 0.3, "cold {m_cold} vs hot {m_hot}");
    }

    #[test]
    fn energy_bounds() {
        let model = IsingModel::new(6, 0.4, 20);
        let mut rng = Lcg128::new();
        for _ in 0..50 {
            let (e, m) = model.sample_chain(&mut rng);
            assert!((-2.0..=2.0).contains(&e), "energy {e}");
            assert!((0.0..=1.0).contains(&m), "magnetization {m}");
        }
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let model = IsingModel::new(4, 0.3, 5);
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = [9.0; 2];
        model.realize(&mut s, &mut out);
        assert!(out[0] >= -2.0 && out[0] <= 2.0);
        assert!(out[1] >= 0.0 && out[1] <= 1.0);
    }

    #[test]
    fn critical_beta_constant() {
        let exact = (1.0 + 2f64.sqrt()).ln() / 2.0;
        assert!((IsingModel::BETA_CRITICAL - exact).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lattice side")]
    fn rejects_tiny_lattice() {
        let _ = IsingModel::new(1, 0.4, 1);
    }
}
