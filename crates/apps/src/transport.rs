//! 1-D slab radiation transport — the founding application of Monte
//! Carlo (paper Section 2.1: "Monte Carlo method ... was developed to
//! solve problems of radiation transfer").
//!
//! A particle enters a slab `[0, L]` travelling in the +x direction.
//! Free paths are exponential with total cross-section `Σ_t`; at each
//! collision the particle is absorbed with probability `Σ_a / Σ_t` or
//! scattered isotropically (new direction cosine `μ ~ U(-1, 1)`).
//! The realization records `(transmitted, reflected, absorbed)` as a
//! 1×3 indicator matrix, plus the collision count in no estimator —
//! PARMONC averages the indicators into probabilities.
//!
//! For a purely absorbing slab the transmission probability is exactly
//! `e^{-Σ_t L}`, which the tests verify.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::distributions::{exponential, uniform};

/// The slab transport problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabTransport {
    /// Slab thickness `L`.
    pub thickness: f64,
    /// Total cross-section `Σ_t` (collisions per unit length).
    pub sigma_total: f64,
    /// Absorption cross-section `Σ_a ≤ Σ_t`.
    pub sigma_absorb: f64,
}

/// Fate of one transported particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Left through the far face (`x ≥ L`).
    Transmitted,
    /// Left back through the entry face (`x ≤ 0`).
    Reflected,
    /// Absorbed inside the slab.
    Absorbed,
}

impl SlabTransport {
    /// Creates a slab problem.
    ///
    /// # Panics
    ///
    /// Panics unless `thickness > 0`, `sigma_total > 0` and
    /// `0 ≤ sigma_absorb ≤ sigma_total`.
    #[must_use]
    pub fn new(thickness: f64, sigma_total: f64, sigma_absorb: f64) -> Self {
        assert!(thickness > 0.0, "thickness must be positive");
        assert!(sigma_total > 0.0, "total cross-section must be positive");
        assert!(
            (0.0..=sigma_total).contains(&sigma_absorb),
            "absorption cross-section must lie in [0, sigma_total]"
        );
        Self {
            thickness,
            sigma_total,
            sigma_absorb,
        }
    }

    /// A purely absorbing slab (no scattering): transmission is exactly
    /// `e^{-Σ_t L}`.
    #[must_use]
    pub fn purely_absorbing(thickness: f64, sigma_total: f64) -> Self {
        Self::new(thickness, sigma_total, sigma_total)
    }

    /// The exact transmission probability when the slab is purely
    /// absorbing.
    ///
    /// # Panics
    ///
    /// Panics if the slab scatters (`sigma_absorb < sigma_total`).
    #[must_use]
    pub fn exact_transmission_pure_absorption(&self) -> f64 {
        assert!(
            self.sigma_absorb == self.sigma_total,
            "closed form only holds without scattering"
        );
        (-self.sigma_total * self.thickness).exp()
    }

    /// Transports one particle and returns its fate.
    pub fn transport<R: parmonc_rng::UniformSource + ?Sized>(&self, rng: &mut R) -> Fate {
        let mut x = 0.0;
        let mut mu: f64 = 1.0; // direction cosine, +1 = forward
        loop {
            let path = exponential(rng, self.sigma_total);
            x += mu * path;
            if x >= self.thickness {
                return Fate::Transmitted;
            }
            if x <= 0.0 {
                return Fate::Reflected;
            }
            // Collision: absorb or scatter isotropically.
            if rng.next_f64() < self.sigma_absorb / self.sigma_total {
                return Fate::Absorbed;
            }
            mu = uniform(rng, -1.0, 1.0);
        }
    }
}

impl Realize for SlabTransport {
    /// Output: 1×3 indicators `[transmitted, reflected, absorbed]`.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        match self.transport(rng) {
            Fate::Transmitted => out[0] = 1.0,
            Fate::Reflected => out[1] = 1.0,
            Fate::Absorbed => out[2] = 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    fn rates(slab: &SlabTransport, trials: u32) -> (f64, f64, f64) {
        let mut rng = Lcg128::new();
        let (mut t, mut r, mut a) = (0u32, 0u32, 0u32);
        for _ in 0..trials {
            match slab.transport(&mut rng) {
                Fate::Transmitted => t += 1,
                Fate::Reflected => r += 1,
                Fate::Absorbed => a += 1,
            }
        }
        let n = f64::from(trials);
        (f64::from(t) / n, f64::from(r) / n, f64::from(a) / n)
    }

    #[test]
    fn pure_absorption_matches_beer_lambert() {
        for (len, sigma) in [(1.0, 1.0), (2.0, 0.5), (0.5, 3.0)] {
            let slab = SlabTransport::purely_absorbing(len, sigma);
            let (t, r, _a) = rates(&slab, 200_000);
            let exact = slab.exact_transmission_pure_absorption();
            assert!(
                (t - exact).abs() < 0.005,
                "L={len} sigma={sigma}: {t} vs {exact}"
            );
            assert_eq!(r, 0.0, "no scattering means no reflection");
        }
    }

    #[test]
    fn fates_partition_unity() {
        let slab = SlabTransport::new(2.0, 1.0, 0.3);
        let (t, r, a) = rates(&slab, 50_000);
        assert!((t + r + a - 1.0).abs() < 1e-12);
        assert!(t > 0.0 && r > 0.0 && a > 0.0);
    }

    #[test]
    fn scattering_increases_reflection() {
        let absorbing = SlabTransport::purely_absorbing(1.0, 1.0);
        let scattering = SlabTransport::new(1.0, 1.0, 0.2);
        let (_, r_abs, _) = rates(&absorbing, 50_000);
        let (_, r_scat, _) = rates(&scattering, 50_000);
        assert_eq!(r_abs, 0.0);
        assert!(r_scat > 0.05, "scattering slab reflects: {r_scat}");
    }

    #[test]
    fn thicker_slab_transmits_less() {
        let thin = SlabTransport::new(0.5, 1.0, 0.5);
        let thick = SlabTransport::new(3.0, 1.0, 0.5);
        let (t_thin, ..) = rates(&thin, 50_000);
        let (t_thick, ..) = rates(&thick, 50_000);
        assert!(t_thin > t_thick + 0.1, "{t_thin} vs {t_thick}");
    }

    #[test]
    fn realize_writes_one_indicator() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let slab = SlabTransport::new(1.0, 1.0, 0.5);
        let h = StreamHierarchy::default();
        for k in 0..100 {
            let mut s = h.realization_stream(StreamId::new(0, 0, k)).unwrap();
            let mut out = [0.0; 3];
            slab.realize(&mut s, &mut out);
            assert_eq!(out.iter().sum::<f64>(), 1.0);
            assert!(out.iter().all(|x| *x == 0.0 || *x == 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0, sigma_total]")]
    fn rejects_absorption_above_total() {
        let _ = SlabTransport::new(1.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "only holds without scattering")]
    fn exact_formula_guarded() {
        let slab = SlabTransport::new(1.0, 1.0, 0.5);
        let _ = slab.exact_transmission_pure_absorption();
    }
}
