//! Monte Carlo application workloads for the PARMONC reproduction.
//!
//! The paper's introduction motivates PARMONC with the breadth of
//! stochastic-simulation domains: radiation transfer, statistical
//! physics (Metropolis/Ising), physical and chemical kinetics, queueing
//! theory, financial mathematics, and population biology. This crate
//! implements one representative workload per domain, each as a
//! [`parmonc::Realize`] routine ready to hand to the runner, and each
//! with a closed-form (or well-known) answer that the test suite checks
//! the estimator pipeline against:
//!
//! * [`integrate`] — MC integration: π by rejection, unit-ball volumes;
//! * [`transport`] — 1-D slab radiation transport with
//!   absorption/scattering; pure-absorption transmission is `e^{-Σ L}`;
//! * [`ising`] — a 2-D Ising Metropolis sampler (energy/magnetization
//!   at high temperature approach their free-spin limits);
//! * [`queue`] — an M/M/1 queue; mean waiting time is
//!   `ρ / (μ − λ)` by Pollaczek–Khinchine;
//! * [`branching`] — a Galton–Watson branching process; the extinction
//!   probability solves `q = f(q)` for the offspring PGF `f`;
//! * [`kinetics`] — exact Gillespie SSA for an immigration–death
//!   reaction network (Poissonian closed form);
//! * [`coagulation`] — Marcus–Lushnikov direct simulation of
//!   Smoluchowski coagulation (constant kernel, mean-field closed
//!   form);
//! * [`finance`] — European option pricing under GBM against the
//!   Black–Scholes formula.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod branching;
pub mod coagulation;
pub mod finance;
pub mod integrate;
pub mod ising;
pub mod kinetics;
pub mod queue;
pub mod transport;

pub use branching::GaltonWatson;
pub use coagulation::ConstantKernelCoagulation;
pub use finance::EuropeanCall;
pub use integrate::{BallVolume, PiEstimator};
pub use ising::IsingModel;
pub use kinetics::ImmigrationDeath;
pub use queue::MM1Queue;
pub use transport::SlabTransport;
