//! Financial mathematics: Monte Carlo pricing of a European call under
//! geometric Brownian motion, validated against the Black–Scholes
//! closed form (paper Section 2.1 lists "financial mathematics" among
//! Monte Carlo's domains).
//!
//! One realization samples the terminal stock price directly from the
//! exact GBM solution
//! `S_T = S_0 exp((r − σ²/2)T + σ √T Z)` and returns the discounted
//! payoff `e^{−rT} max(S_T − K, 0)` — the estimator whose expectation
//! *is* the Black–Scholes price.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::distributions::standard_normal;
use parmonc_rng::UniformSource;

/// A European call option under Black–Scholes dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EuropeanCall {
    /// Spot price `S_0`.
    pub spot: f64,
    /// Strike `K`.
    pub strike: f64,
    /// Risk-free rate `r` (continuous compounding).
    pub rate: f64,
    /// Volatility `σ`.
    pub volatility: f64,
    /// Maturity `T` in years.
    pub maturity: f64,
}

impl EuropeanCall {
    /// Creates the option.
    ///
    /// # Panics
    ///
    /// Panics unless spot, strike, volatility and maturity are
    /// strictly positive.
    #[must_use]
    pub fn new(spot: f64, strike: f64, rate: f64, volatility: f64, maturity: f64) -> Self {
        assert!(spot > 0.0, "spot must be positive");
        assert!(strike > 0.0, "strike must be positive");
        assert!(volatility > 0.0, "volatility must be positive");
        assert!(maturity > 0.0, "maturity must be positive");
        Self {
            spot,
            strike,
            rate,
            volatility,
            maturity,
        }
    }

    /// Samples one discounted payoff.
    pub fn sample_payoff<R: UniformSource + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        let drift = (self.rate - 0.5 * self.volatility * self.volatility) * self.maturity;
        let diffusion = self.volatility * self.maturity.sqrt() * z;
        let terminal = self.spot * (drift + diffusion).exp();
        (-self.rate * self.maturity).exp() * (terminal - self.strike).max(0.0)
    }

    /// The Black–Scholes price
    /// `S_0 Φ(d₁) − K e^{−rT} Φ(d₂)`.
    #[must_use]
    pub fn black_scholes_price(&self) -> f64 {
        let sqrt_t = self.maturity.sqrt();
        let d1 = ((self.spot / self.strike).ln()
            + (self.rate + 0.5 * self.volatility * self.volatility) * self.maturity)
            / (self.volatility * sqrt_t);
        let d2 = d1 - self.volatility * sqrt_t;
        self.spot * normal_cdf(d1)
            - self.strike * (-self.rate * self.maturity).exp() * normal_cdf(d2)
    }
}

impl Realize for EuropeanCall {
    /// Output: 1×1 matrix holding the discounted payoff.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        out[0] = self.sample_payoff(rng);
    }
}

/// Standard normal CDF via `erf` (Abramowitz–Stegun 7.1.26 rational
/// approximation, |error| < 1.5e-7 — far below Monte Carlo noise).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;
    use parmonc_stats::ScalarAccumulator;

    fn atm() -> EuropeanCall {
        EuropeanCall::new(100.0, 100.0, 0.05, 0.2, 1.0)
    }

    #[test]
    fn black_scholes_reference_value() {
        // Textbook value: S=K=100, r=5%, sigma=20%, T=1 → C ≈ 10.4506.
        let c = atm().black_scholes_price();
        assert!((c - 10.4506).abs() < 1e-3, "{c}");
    }

    #[test]
    fn put_call_parity_via_prices() {
        // C − P = S − K e^{−rT}; compute the put from a reflected call
        // using parity, then re-derive with distinct strikes to ensure
        // monotonicity: lower strike → pricier call.
        let lo = EuropeanCall::new(100.0, 90.0, 0.05, 0.2, 1.0).black_scholes_price();
        let hi = EuropeanCall::new(100.0, 110.0, 0.05, 0.2, 1.0).black_scholes_price();
        assert!(lo > atm().black_scholes_price());
        assert!(hi < atm().black_scholes_price());
    }

    #[test]
    fn monte_carlo_price_converges_to_black_scholes() {
        let option = atm();
        let mut rng = Lcg128::new();
        let acc: ScalarAccumulator = (0..400_000)
            .map(|_| option.sample_payoff(&mut rng))
            .collect();
        let eps = acc.abs_error();
        assert!(
            (acc.mean() - option.black_scholes_price()).abs() <= eps + 0.01,
            "MC {} ± {eps} vs BS {}",
            acc.mean(),
            option.black_scholes_price()
        );
    }

    #[test]
    fn deep_in_the_money_approaches_forward_value() {
        // K → 0: the call is worth S_0 (the discounted forward).
        let option = EuropeanCall::new(100.0, 0.01, 0.05, 0.2, 1.0);
        assert!((option.black_scholes_price() - 100.0).abs() < 0.05);
    }

    #[test]
    fn payoffs_are_non_negative() {
        let option = atm();
        let mut rng = Lcg128::new();
        for _ in 0..10_000 {
            assert!(option.sample_payoff(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn higher_volatility_costs_more() {
        let calm = EuropeanCall::new(100.0, 100.0, 0.05, 0.1, 1.0);
        let wild = EuropeanCall::new(100.0, 100.0, 0.05, 0.4, 1.0);
        assert!(wild.black_scholes_price() > calm.black_scholes_price() + 5.0);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.0) - 0.158_655).abs() < 1e-4);
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = [0.0];
        atm().realize(&mut s, &mut out);
        assert!(out[0] >= 0.0);
    }

    #[test]
    #[should_panic(expected = "volatility must be positive")]
    fn rejects_zero_vol() {
        let _ = EuropeanCall::new(100.0, 100.0, 0.05, 0.0, 1.0);
    }
}
