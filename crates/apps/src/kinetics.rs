//! Stochastic chemical kinetics via the Gillespie stochastic
//! simulation algorithm (SSA) — the "modeling the chemical reactions"
//! domain of paper Section 2.1.
//!
//! The model is an immigration–death process (production/degradation of
//! one species):
//!
//! ```text
//! ∅ → X   at rate k_prod          (zeroth order production)
//! X → ∅   at rate k_deg · #X      (first order degradation)
//! ```
//!
//! The exact solution is Poissonian at all times:
//! `#X(t) ~ Poisson(m(t))` with
//! `m(t) = (k_prod/k_deg)(1 − e^{−k_deg t}) + n₀ e^{−k_deg t}` for a
//! deterministic initial count `n₀` (exactly Poisson when `n₀ = 0`),
//! so both the mean and the variance of the copy number are known in
//! closed form — ideal for validating the whole estimator pipeline.
//!
//! One realization records the copy number at `points` equally spaced
//! observation times as a `points × 1` matrix.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::UniformSource;

/// The immigration–death SSA workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImmigrationDeath {
    /// Production rate `k_prod` (molecules per unit time).
    pub k_prod: f64,
    /// Per-molecule degradation rate `k_deg`.
    pub k_deg: f64,
    /// Initial copy number `n₀`.
    pub initial: u64,
    /// Observation horizon `T`.
    pub horizon: f64,
    /// Number of equally spaced observation times (matrix rows).
    pub points: usize,
}

impl ImmigrationDeath {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `k_prod > 0`, `k_deg > 0`, `horizon > 0` and
    /// `points > 0`.
    #[must_use]
    pub fn new(k_prod: f64, k_deg: f64, initial: u64, horizon: f64, points: usize) -> Self {
        assert!(k_prod > 0.0, "production rate must be positive");
        assert!(k_deg > 0.0, "degradation rate must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(points > 0, "need at least one observation time");
        Self {
            k_prod,
            k_deg,
            initial,
            horizon,
            points,
        }
    }

    /// The `i`-th observation time (0-based): `(i+1)·T/points`.
    #[must_use]
    pub fn observation_time(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.horizon / self.points as f64
    }

    /// Exact mean copy number at time `t`.
    #[must_use]
    pub fn exact_mean(&self, t: f64) -> f64 {
        let decay = (-self.k_deg * t).exp();
        self.k_prod / self.k_deg * (1.0 - decay) + self.initial as f64 * decay
    }

    /// Exact variance of the copy number at time `t`
    /// (`= mean` when `n₀ = 0`; in general
    /// `(k/γ)(1−e^{−γt}) + n₀ e^{−γt}(1−e^{−γt})`).
    #[must_use]
    pub fn exact_variance(&self, t: f64) -> f64 {
        let decay = (-self.k_deg * t).exp();
        self.k_prod / self.k_deg * (1.0 - decay) + self.initial as f64 * decay * (1.0 - decay)
    }

    /// The stationary mean `k_prod / k_deg`.
    #[must_use]
    pub fn stationary_mean(&self) -> f64 {
        self.k_prod / self.k_deg
    }

    /// Runs one exact SSA trajectory, writing the copy number at each
    /// observation time into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != points`.
    pub fn simulate_into<R: UniformSource + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.points,
            "output must have one entry per time"
        );
        let mut t = 0.0f64;
        let mut n = self.initial;
        let mut next_obs = 0usize;

        loop {
            let a_prod = self.k_prod;
            let a_deg = self.k_deg * n as f64;
            let a_total = a_prod + a_deg;
            // Exponential waiting time to the next reaction.
            let dt = -rng.next_f64().ln() / a_total;
            let t_next = t + dt;

            // Record every observation time the jump passes over.
            while next_obs < self.points && self.observation_time(next_obs) <= t_next {
                out[next_obs] = n as f64;
                next_obs += 1;
            }
            if next_obs >= self.points {
                return;
            }
            t = t_next;
            // Choose the reaction.
            if rng.next_f64() * a_total < a_prod {
                n += 1;
            } else {
                n -= 1; // a_deg > 0 implies n > 0 here
            }
        }
    }
}

impl Realize for ImmigrationDeath {
    /// Output: `points × 1` matrix of copy numbers at the observation
    /// times.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        self.simulate_into(rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;
    use parmonc_stats::MatrixAccumulator;

    fn model() -> ImmigrationDeath {
        ImmigrationDeath::new(10.0, 1.0, 0, 5.0, 10)
    }

    fn estimate(m: &ImmigrationDeath, trials: usize) -> MatrixAccumulator {
        let mut rng = Lcg128::new();
        let mut acc = MatrixAccumulator::new(m.points, 1).unwrap();
        let mut out = vec![0.0; m.points];
        for _ in 0..trials {
            m.simulate_into(&mut rng, &mut out);
            acc.add(&out).unwrap();
        }
        acc
    }

    #[test]
    fn mean_matches_exact_transient() {
        let m = model();
        let acc = estimate(&m, 20_000);
        let s = acc.summary();
        for i in 0..m.points {
            let t = m.observation_time(i);
            let mean = s.mean(i, 0);
            let exact = m.exact_mean(t);
            let tol = 4.0 * (m.exact_variance(t) / 20_000.0).sqrt() + 0.02;
            assert!((mean - exact).abs() < tol, "t={t}: {mean} vs {exact}");
        }
    }

    #[test]
    fn variance_is_poissonian() {
        // With n0 = 0 the copy number is exactly Poisson: Var = mean.
        let m = model();
        let acc = estimate(&m, 20_000);
        let s = acc.summary();
        let last = m.points - 1;
        let t = m.observation_time(last);
        let var = s.variances[last];
        assert!(
            (var - m.exact_variance(t)).abs() < 0.08 * m.exact_variance(t) + 0.1,
            "var {var} vs {}",
            m.exact_variance(t)
        );
    }

    #[test]
    fn relaxes_to_stationary_mean() {
        // By t = 5/k_deg the transient is gone: mean ≈ k/γ = 10.
        let m = model();
        let acc = estimate(&m, 5_000);
        let s = acc.summary();
        let mean_last = s.mean(m.points - 1, 0);
        assert!((mean_last - m.stationary_mean()).abs() < 0.3, "{mean_last}");
    }

    #[test]
    fn deterministic_initial_decays() {
        // Start far above stationarity: mean decays toward k/γ.
        let m = ImmigrationDeath::new(2.0, 1.0, 100, 3.0, 6);
        let acc = estimate(&m, 4_000);
        let s = acc.summary();
        let first = s.mean(0, 0);
        let last = s.mean(5, 0);
        assert!(first > last, "{first} -> {last}");
        let exact_last = m.exact_mean(m.observation_time(5));
        assert!((last - exact_last).abs() < 1.0, "{last} vs {exact_last}");
    }

    #[test]
    fn copy_numbers_are_non_negative_integers() {
        let m = model();
        let mut rng = Lcg128::new();
        let mut out = vec![0.0; m.points];
        for _ in 0..200 {
            m.simulate_into(&mut rng, &mut out);
            for &x in &out {
                assert!(x >= 0.0 && x.fract() == 0.0, "bad copy number {x}");
            }
        }
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let m = model();
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = vec![0.0; m.points];
        m.realize(&mut s, &mut out);
        assert!(out.iter().all(|x| *x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "production rate")]
    fn rejects_zero_production() {
        let _ = ImmigrationDeath::new(0.0, 1.0, 0, 1.0, 1);
    }
}
