//! An M/M/1 queue — the queueing-theory workload
//! (paper Section 2.1 lists "the queuing theory" among Monte Carlo's
//! domains).
//!
//! Customers arrive as a Poisson process of rate `λ` at a single server
//! with exponential service times of rate `μ > λ`. One realization
//! simulates `customers` arrivals by Lindley's recursion
//! `W_{k+1} = max(0, W_k + S_k − A_{k+1})` and records the mean waiting
//! time and the fraction of delayed customers as a 1×2 matrix.
//!
//! Steady-state theory gives `E W = ρ / (μ − λ)` with `ρ = λ/μ`, and
//! `P(wait > 0) = ρ`, which the tests check against long simulations.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::distributions::exponential;
use parmonc_rng::UniformSource;

/// The M/M/1 queue workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MM1Queue {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ (must exceed λ for stability).
    pub mu: f64,
    /// Customers per realization.
    pub customers: usize,
    /// Customers discarded as warm-up before recording.
    pub warmup: usize,
}

impl MM1Queue {
    /// Creates a stable queue workload.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda < mu` and
    /// `customers > warmup`.
    #[must_use]
    pub fn new(lambda: f64, mu: f64, customers: usize, warmup: usize) -> Self {
        assert!(lambda > 0.0, "arrival rate must be positive");
        assert!(mu > lambda, "stability requires mu > lambda");
        assert!(
            customers > warmup,
            "need customers after the warm-up period"
        );
        Self {
            lambda,
            mu,
            customers,
            warmup,
        }
    }

    /// Utilization `ρ = λ / μ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Exact steady-state mean waiting time `ρ / (μ − λ)`.
    #[must_use]
    pub fn exact_mean_wait(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }

    /// Simulates one realization, returning
    /// `(mean_wait, fraction_delayed)` over the recorded customers.
    pub fn simulate<R: UniformSource + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let mut w = 0.0f64; // waiting time of current customer
        let mut wait_sum = 0.0;
        let mut delayed = 0usize;
        let recorded = self.customers - self.warmup;
        for k in 0..self.customers {
            if k >= self.warmup {
                wait_sum += w;
                if w > 0.0 {
                    delayed += 1;
                }
            }
            let service = exponential(rng, self.mu);
            let interarrival = exponential(rng, self.lambda);
            w = (w + service - interarrival).max(0.0);
        }
        (wait_sum / recorded as f64, delayed as f64 / recorded as f64)
    }
}

impl Realize for MM1Queue {
    /// Output: 1×2 matrix `[mean_wait, fraction_delayed]`.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        let (w, d) = self.simulate(rng);
        out[0] = w;
        out[1] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    fn long_run(q: &MM1Queue, realizations: usize) -> (f64, f64) {
        let mut rng = Lcg128::new();
        let (mut w, mut d) = (0.0, 0.0);
        for _ in 0..realizations {
            let (wi, di) = q.simulate(&mut rng);
            w += wi;
            d += di;
        }
        (w / realizations as f64, d / realizations as f64)
    }

    #[test]
    fn mean_wait_matches_theory_moderate_load() {
        let q = MM1Queue::new(0.5, 1.0, 20_000, 2_000);
        let (w, d) = long_run(&q, 20);
        assert!(
            (w - q.exact_mean_wait()).abs() < 0.1 * q.exact_mean_wait() + 0.02,
            "wait {w} vs {}",
            q.exact_mean_wait()
        );
        assert!((d - q.rho()).abs() < 0.05, "delayed {d} vs rho {}", q.rho());
    }

    #[test]
    fn mean_wait_matches_theory_high_load() {
        let q = MM1Queue::new(0.8, 1.0, 100_000, 20_000);
        let (w, _) = long_run(&q, 10);
        // E W = 0.8/0.2 = 4; heavy traffic converges slowly, allow 15%.
        assert!((w - 4.0).abs() < 0.6, "wait {w} vs 4.0");
    }

    #[test]
    fn light_load_rarely_waits() {
        let q = MM1Queue::new(0.1, 1.0, 10_000, 1_000);
        let (w, d) = long_run(&q, 10);
        assert!(w < 0.2, "wait {w}");
        assert!(d < 0.15, "delayed {d}");
    }

    #[test]
    fn heavier_load_waits_longer() {
        let light = MM1Queue::new(0.3, 1.0, 20_000, 2_000);
        let heavy = MM1Queue::new(0.7, 1.0, 20_000, 2_000);
        let (w_light, _) = long_run(&light, 10);
        let (w_heavy, _) = long_run(&heavy, 10);
        assert!(w_heavy > 3.0 * w_light, "{w_heavy} vs {w_light}");
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let q = MM1Queue::new(0.5, 1.0, 1_000, 100);
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = [0.0; 2];
        q.realize(&mut s, &mut out);
        assert!(out[0] >= 0.0);
        assert!((0.0..=1.0).contains(&out[1]));
    }

    #[test]
    #[should_panic(expected = "mu > lambda")]
    fn rejects_unstable_queue() {
        let _ = MM1Queue::new(1.0, 1.0, 100, 10);
    }

    #[test]
    #[should_panic(expected = "after the warm-up")]
    fn rejects_all_warmup() {
        let _ = MM1Queue::new(0.5, 1.0, 100, 100);
    }
}
