//! A Galton–Watson branching process — the population-biology workload
//! (the paper notes MONC "was actively applied ... to solve various
//! problems in the population biology").
//!
//! Each individual independently leaves `Poisson(m)` offspring. One
//! realization runs the population for up to `max_generations`
//! generations (capped at `max_population` to bound work) and records a
//! 1×2 matrix: `[extinct_indicator, generations_survived]`.
//!
//! The extinction probability `q` is the smallest fixed point of the
//! offspring PGF, `q = e^{m(q−1)}` for Poisson offspring: `q = 1` iff
//! `m ≤ 1` (critical/subcritical), `q < 1` for `m > 1`.

use parmonc::{RealizationStream, Realize};
use parmonc_rng::distributions::poisson;
use parmonc_rng::UniformSource;

/// The Galton–Watson workload with Poisson offspring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaltonWatson {
    /// Mean offspring count `m`.
    pub mean_offspring: f64,
    /// Generations to simulate before declaring survival.
    pub max_generations: usize,
    /// Population cap (a population this large at supercritical `m`
    /// survives with overwhelming probability).
    pub max_population: u64,
}

impl GaltonWatson {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_offspring > 0`, `max_generations > 0` and
    /// `max_population > 0`.
    #[must_use]
    pub fn new(mean_offspring: f64, max_generations: usize, max_population: u64) -> Self {
        assert!(mean_offspring > 0.0, "mean offspring must be positive");
        assert!(max_generations > 0, "need at least one generation");
        assert!(max_population > 0, "population cap must be positive");
        Self {
            mean_offspring,
            max_generations,
            max_population,
        }
    }

    /// Solves `q = e^{m(q−1)}` for the extinction probability by fixed-
    /// point iteration from 0 (converges monotonically to the smallest
    /// root).
    #[must_use]
    pub fn exact_extinction_probability(&self) -> f64 {
        if self.mean_offspring <= 1.0 {
            return 1.0;
        }
        let m = self.mean_offspring;
        let mut q = 0.0f64;
        for _ in 0..10_000 {
            let next = (m * (q - 1.0)).exp();
            if (next - q).abs() < 1e-15 {
                return next;
            }
            q = next;
        }
        q
    }

    /// Simulates one lineage from a single ancestor; returns
    /// `(extinct, generations_survived)`.
    ///
    /// The next generation size is the sum of `population` i.i.d.
    /// `Poisson(m)` offspring counts, which is exactly
    /// `Poisson(m · population)` — sampled in one draw per generation.
    pub fn simulate<R: UniformSource + ?Sized>(&self, rng: &mut R) -> (bool, usize) {
        let mut population = 1u64;
        for generation in 0..self.max_generations {
            if population == 0 {
                return (true, generation);
            }
            if population >= self.max_population {
                // Effectively escaped to infinity.
                return (false, self.max_generations);
            }
            population = poisson_fast(rng, self.mean_offspring * population as f64);
        }
        (population == 0, self.max_generations)
    }
}

/// Poisson sampler that switches to the normal approximation
/// `round(N(λ, λ))` above λ = 64, where its relative error is far below
/// Monte Carlo noise; exact Knuth product method below.
fn poisson_fast<R: UniformSource + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 64.0 {
        poisson(rng, lambda)
    } else {
        let z = parmonc_rng::distributions::standard_normal(rng);
        (lambda + lambda.sqrt() * z).round().max(0.0) as u64
    }
}

impl Realize for GaltonWatson {
    /// Output: 1×2 matrix `[extinct, generations_survived]`.
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        let (extinct, gens) = self.simulate(rng);
        out[0] = f64::from(u8::from(extinct));
        out[1] = gens as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::Lcg128;

    fn extinction_rate(gw: &GaltonWatson, trials: usize) -> f64 {
        let mut rng = Lcg128::new();
        let extinct = (0..trials).filter(|_| gw.simulate(&mut rng).0).count();
        extinct as f64 / trials as f64
    }

    #[test]
    fn subcritical_always_dies() {
        let gw = GaltonWatson::new(0.7, 100, 10_000);
        assert_eq!(gw.exact_extinction_probability(), 1.0);
        let rate = extinction_rate(&gw, 5_000);
        assert!(rate > 0.995, "rate {rate}");
    }

    #[test]
    fn supercritical_extinction_matches_fixed_point() {
        // m = 1.5: q solves q = e^{1.5(q-1)} ≈ 0.4172.
        let gw = GaltonWatson::new(1.5, 200, 100_000);
        let q = gw.exact_extinction_probability();
        assert!((q - 0.417).abs() < 0.01, "fixed point {q}");
        let rate = extinction_rate(&gw, 20_000);
        assert!((rate - q).abs() < 0.02, "simulated {rate} vs exact {q}");
    }

    #[test]
    fn strongly_supercritical_rarely_dies() {
        let gw = GaltonWatson::new(3.0, 100, 100_000);
        let q = gw.exact_extinction_probability();
        // q = e^{3(q-1)} ≈ 0.0595.
        assert!((q - 0.0595).abs() < 0.01, "fixed point {q}");
        let rate = extinction_rate(&gw, 20_000);
        assert!((rate - q).abs() < 0.02, "simulated {rate}");
    }

    #[test]
    fn critical_case_returns_one() {
        let gw = GaltonWatson::new(1.0, 10, 100);
        assert_eq!(gw.exact_extinction_probability(), 1.0);
    }

    #[test]
    fn extinct_lineages_die_early_at_low_mean() {
        let gw = GaltonWatson::new(0.5, 100, 10_000);
        let mut rng = Lcg128::new();
        let mut gens_sum = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            let (extinct, gens) = gw.simulate(&mut rng);
            assert!(extinct);
            gens_sum += gens;
        }
        // Mean extinction time for m = 0.5 is small (≈ 1.6 generations).
        let mean = gens_sum as f64 / trials as f64;
        assert!(mean < 4.0, "mean extinction generation {mean}");
    }

    #[test]
    fn realize_interface() {
        use parmonc::Realize;
        use parmonc_rng::{StreamHierarchy, StreamId};
        let gw = GaltonWatson::new(1.2, 50, 10_000);
        let mut s = StreamHierarchy::default()
            .realization_stream(StreamId::new(0, 0, 0))
            .unwrap();
        let mut out = [0.0; 2];
        gw.realize(&mut s, &mut out);
        assert!(out[0] == 0.0 || out[0] == 1.0);
        assert!(out[1] >= 0.0 && out[1] <= 50.0);
    }

    #[test]
    #[should_panic(expected = "mean offspring")]
    fn rejects_zero_mean() {
        let _ = GaltonWatson::new(0.0, 10, 100);
    }
}
