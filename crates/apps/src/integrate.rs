//! Monte Carlo integration workloads.

use parmonc::{RealizationStream, Realize};

/// Estimates π by the classic quarter-circle rejection test: one
/// realization is `ζ = 4·1{x² + y² < 1}` with `x, y ~ U(0,1)`, so
/// `Eζ = π`.
///
/// Output shape: 1×1.
///
/// # Examples
///
/// ```
/// use parmonc::{Parmonc, ParmoncError};
/// use parmonc_apps::PiEstimator;
///
/// # fn main() -> Result<(), ParmoncError> {
/// let dir = std::env::temp_dir().join("parmonc-doc-pi");
/// let report = Parmonc::builder(1, 1)
///     .max_sample_volume(20_000)
///     .output_dir(&dir)
///     .run(PiEstimator)?;
/// assert!((report.summary.means[0] - std::f64::consts::PI).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PiEstimator;

impl Realize for PiEstimator {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        let x = rng.next_f64();
        let y = rng.next_f64();
        out[0] = if x * x + y * y < 1.0 { 4.0 } else { 0.0 };
    }
}

/// Estimates the volume of the unit ball in `dim` dimensions by
/// rejection from the enclosing cube `[-1, 1]^dim`:
/// `ζ = 2^dim · 1{‖x‖ < 1}`.
///
/// Output shape: 1×1. The exact volume is
/// `π^{d/2} / Γ(d/2 + 1)` (see [`BallVolume::exact`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallVolume {
    dim: usize,
}

impl BallVolume {
    /// Creates the estimator for dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim }
    }

    /// The dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Exact unit-ball volume `π^{d/2} / Γ(d/2 + 1)` via the recurrence
    /// `V_d = V_{d-2} · 2π / d`, `V_1 = 2`, `V_2 = π`.
    #[must_use]
    pub fn exact(&self) -> f64 {
        let mut v = if self.dim % 2 == 1 {
            2.0
        } else {
            core::f64::consts::PI
        };
        let mut d = if self.dim % 2 == 1 { 1 } else { 2 };
        while d < self.dim {
            d += 2;
            v *= 2.0 * core::f64::consts::PI / d as f64;
        }
        v
    }
}

impl Realize for BallVolume {
    fn realize(&self, rng: &mut RealizationStream, out: &mut [f64]) {
        // The draw count is fixed (`dim` per realization, no early
        // exit), so the uniforms can come from the batched fill path —
        // bitwise identical to the sequential draw loop.
        let mut draws = [0.0f64; 64];
        let mut norm_sq = 0.0;
        let mut remaining = self.dim;
        while remaining > 0 {
            let take = remaining.min(draws.len());
            let buf = &mut draws[..take];
            rng.fill_f64(buf);
            for u in buf.iter() {
                let x = 2.0 * u - 1.0;
                norm_sq += x * x;
            }
            remaining -= take;
        }
        out[0] = if norm_sq < 1.0 {
            (1u64 << self.dim) as f64
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmonc_rng::{StreamHierarchy, StreamId};
    use parmonc_stats::ScalarAccumulator;

    fn estimate<R: Realize>(r: &R, trials: u64) -> ScalarAccumulator {
        let h = StreamHierarchy::default();
        let mut acc = ScalarAccumulator::new();
        let mut out = [0.0];
        for k in 0..trials {
            let mut s = h.realization_stream(StreamId::new(0, 0, k)).unwrap();
            r.realize(&mut s, &mut out);
            acc.add(out[0]);
        }
        acc
    }

    #[test]
    fn pi_estimate_converges() {
        let acc = estimate(&PiEstimator, 100_000);
        let err = 3.0 * acc.variance().sqrt() / (acc.count() as f64).sqrt();
        assert!(
            (acc.mean() - std::f64::consts::PI).abs() < err + 0.01,
            "mean {} ± {err}",
            acc.mean()
        );
    }

    #[test]
    fn pi_variance_matches_bernoulli_formula() {
        // ζ/4 is Bernoulli(π/4): Var ζ = 16 · p(1-p).
        let acc = estimate(&PiEstimator, 100_000);
        let p = std::f64::consts::PI / 4.0;
        let exact_var = 16.0 * p * (1.0 - p);
        assert!(
            (acc.variance() - exact_var).abs() < 0.1,
            "{}",
            acc.variance()
        );
    }

    #[test]
    fn ball_volume_exact_values() {
        assert!((BallVolume::new(1).exact() - 2.0).abs() < 1e-12);
        assert!((BallVolume::new(2).exact() - std::f64::consts::PI).abs() < 1e-12);
        assert!((BallVolume::new(3).exact() - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        // V_5 = 8π²/15.
        assert!(
            (BallVolume::new(5).exact() - 8.0 * std::f64::consts::PI.powi(2) / 15.0).abs() < 1e-12
        );
    }

    #[test]
    fn ball_volume_estimates_match_exact_in_3d_and_5d() {
        for dim in [3, 5] {
            let bv = BallVolume::new(dim);
            let acc = estimate(&bv, 200_000);
            let err = 3.0 * acc.variance().sqrt() / (acc.count() as f64).sqrt();
            assert!(
                (acc.mean() - bv.exact()).abs() < err + 0.02,
                "dim {dim}: {} vs {}",
                acc.mean(),
                bv.exact()
            );
        }
    }

    #[test]
    fn ball_volume_batched_draws_match_scalar_loop_bitwise() {
        // Reproducibility pin for the fill_f64 conversion.
        let h = StreamHierarchy::default();
        for dim in [1usize, 3, 5, 17, 63] {
            let bv = BallVolume::new(dim.min(62));
            let mut batched = h.realization_stream(StreamId::new(0, 0, 7)).unwrap();
            let mut scalar = batched.clone();
            let mut out = [0.0];
            bv.realize(&mut batched, &mut out);

            let mut norm_sq = 0.0;
            for _ in 0..bv.dim() {
                let x = 2.0 * scalar.next_f64() - 1.0;
                norm_sq += x * x;
            }
            let expected = if norm_sq < 1.0 {
                (1u64 << bv.dim()) as f64
            } else {
                0.0
            };
            assert_eq!(out[0], expected, "dim={dim}");
            assert_eq!(batched.drawn(), scalar.drawn(), "accounting dim={dim}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = BallVolume::new(0);
    }
}
