//! The metrics plane: counters, gauges and log-bucketed histograms
//! derived from the event plane, with Prometheus-text exposition.
//!
//! The event plane ([`crate::Monitor`]) records *what happened*; this
//! module aggregates it into *how the run is doing* without any new
//! instrumentation call sites: [`MetricsSink`] is an ordinary
//! [`EventSink`], so every engine that already emits events (the
//! runner, the MPI substrate's queue accounting, the cluster
//! simulator's virtual time, the fault plane's liveness declarations)
//! feeds the registry for free.
//!
//! # Histogram bucket scheme
//!
//! [`LogHistogram`] uses logarithmic buckets with
//! [`SUB_BUCKETS_PER_OCTAVE`] (= 8) buckets per power of two: a value
//! `v > 0` lands in bucket `floor(log2(v) * 8)`, whose bounds are
//! `[2^(i/8), 2^((i+1)/8))`. Quantile queries answer with the bucket's
//! geometric midpoint `2^((i+0.5)/8)`, so the relative error of any
//! quantile is at most `2^(1/16) - 1 ≈ 4.4%` (documented as ≤ 5% in
//! `docs/observability.md`). Bucketing is a pure function of the
//! value, which gives the merge property collectors need: merging
//! per-rank histograms is exactly the histogram of the concatenated
//! samples.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};
use crate::monitor::EventSink;

/// Log-histogram resolution: buckets per power of two. 8 sub-buckets
/// give a worst-case quantile relative error of `2^(1/16) - 1 ≈ 4.4%`.
pub const SUB_BUCKETS_PER_OCTAVE: f64 = 8.0;

/// A mergeable log-bucketed histogram of non-negative samples.
///
/// # Examples
///
/// ```
/// use parmonc_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1.0, 2.0, 4.0, 8.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 - 2.0).abs() / 2.0 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Occupied log buckets: index → sample count.
    buckets: BTreeMap<i32, u64>,
    /// Samples `<= 0` (times and byte counts are non-negative; zeros
    /// from sub-resolution timers land here).
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The log-bucket index of a positive value.
fn bucket_index(v: f64) -> i32 {
    (v.log2() * SUB_BUCKETS_PER_OCTAVE).floor() as i32
}

/// The exclusive upper bound of bucket `i`.
fn bucket_upper(i: i32) -> f64 {
    2f64.powf((f64::from(i) + 1.0) / SUB_BUCKETS_PER_OCTAVE)
}

/// The geometric midpoint of bucket `i` — the quantile representative.
fn bucket_mid(i: i32) -> f64 {
    2f64.powf((f64::from(i) + 0.5) / SUB_BUCKETS_PER_OCTAVE)
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are ignored (the event
    /// plane encodes them as `null`; they carry no information).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v > 0.0 {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        } else {
            self.zero += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, not bucketed).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, if any (exact).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any (exact).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, if any (exact).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) of the recorded samples, within
    /// the bucket relative-error bound; `None` on an empty histogram.
    ///
    /// The answer is the geometric midpoint of the bucket containing
    /// the sample of rank `ceil(q·count)`, clamped to the exact
    /// `[min, max]` range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        let mut representative = if seen >= rank { Some(0.0) } else { None };
        if representative.is_none() {
            for (&i, &c) in &self.buckets {
                seen += c;
                if seen >= rank {
                    representative = Some(bucket_mid(i));
                    break;
                }
            }
        }
        representative.map(|r| r.clamp(self.min, self.max))
    }

    /// Folds another histogram in. Because bucketing is a pure
    /// function of the value, the result equals the histogram of the
    /// concatenated samples.
    pub fn merge(&mut self, other: &Self) {
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative `(upper_bound, count_below_or_at)` pairs for
    /// Prometheus `_bucket{le=...}` rendering, ending just before the
    /// implicit `+Inf` bucket (which equals [`Self::count`]).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cum = self.zero;
        if self.zero > 0 {
            out.push((0.0, cum));
        }
        for (&i, &c) in &self.buckets {
            cum += c;
            out.push((bucket_upper(i), cum));
        }
        out
    }
}

/// What kind of metric a registry key holds — drives the Prometheus
/// `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// Counters and gauges, keyed by full sample name (which may carry
    /// one `{label="value"}` suffix).
    scalars: BTreeMap<String, (MetricKind, f64)>,
    /// Histograms, keyed by family name (no labels).
    histograms: BTreeMap<String, LogHistogram>,
}

/// A thread-safe registry of counters, gauges and [`LogHistogram`]s,
/// rendered on demand as Prometheus text format.
///
/// Sample names follow Prometheus conventions
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`, optionally one `{label="value"}`
/// suffix for scalars); the part before `{` is the family name under
/// which `# TYPE` is emitted.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Adds `by` to a (monotonic) counter, creating it at 0 first.
    pub fn inc_counter(&self, name: &str, by: f64) {
        let mut inner = self.lock();
        if let Some((_, v)) = inner.scalars.get_mut(name) {
            *v += by;
        } else {
            inner
                .scalars
                .insert(name.to_string(), (MetricKind::Counter, by));
        }
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        if let Some((_, v)) = inner.scalars.get_mut(name) {
            *v = value;
        } else {
            inner
                .scalars
                .insert(name.to_string(), (MetricKind::Gauge, value));
        }
    }

    /// Raises a gauge to `value` if it is below it (high-water marks).
    pub fn max_gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        if let Some((_, v)) = inner.scalars.get_mut(name) {
            *v = v.max(value);
        } else {
            inner
                .scalars
                .insert(name.to_string(), (MetricKind::Gauge, value));
        }
    }

    /// Records a sample into the named histogram, creating it empty
    /// first.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = LogHistogram::new();
            h.observe(value);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    /// The current value of a counter or gauge.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.lock().scalars.get(name).map(|(_, v)| *v)
    }

    /// A snapshot of the named histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// The names of every histogram currently registered.
    #[must_use]
    pub fn histogram_names(&self) -> Vec<String> {
        self.lock().histograms.keys().cloned().collect()
    }

    /// The names and values of every counter and gauge.
    #[must_use]
    pub fn scalar_values(&self) -> Vec<(String, f64)> {
        self.lock()
            .scalars
            .iter()
            .map(|(k, (_, v))| (k.clone(), *v))
            .collect()
    }

    /// Folds another registry in: counters add, gauges take the other
    /// registry's value, histograms merge bucket-wise.
    pub fn merge(&self, other: &Self) {
        let other = other.lock();
        let mut inner = self.lock();
        for (name, (kind, v)) in &other.scalars {
            match inner.scalars.get_mut(name) {
                Some((MetricKind::Counter, mine)) => *mine += v,
                Some((MetricKind::Gauge, mine)) => *mine = *v,
                None => {
                    inner.scalars.insert(name.clone(), (*kind, *v));
                }
            }
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = inner.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                inner.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// Renders the registry as Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers, cumulative `le` buckets, `_sum` and
    /// `_count` series) — the contents of
    /// `parmonc_data/monitor/metrics.prom`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, (kind, value)) in &inner.scalars {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let ty = match kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                };
                let _ = writeln!(out, "# HELP {family} {}", help_for(family));
                let _ = writeln!(out, "# TYPE {family} {ty}");
                last_family = family.to_string();
            }
            let _ = writeln!(out, "{name} {}", format_sample(*value));
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "# HELP {name} {}", help_for(name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (upper, cum) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    format_sample(upper)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", format_sample(h.sum()));
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// Formats a sample value for the exposition: integral values print
/// without a fraction, non-finite values use Prometheus spelling
/// (`+Inf`, `-Inf`, `NaN` — Rust's `Display` would print `inf`),
/// everything else uses shortest round-trip.
fn format_sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// One-line help text for the known metric families (and a generic
/// fallback, so every family always has a `# HELP`).
fn help_for(family: &str) -> &'static str {
    match family {
        "parmonc_realization_seconds" => "Per-realization compute time (per exchange batch).",
        "parmonc_message_bytes" => "Payload bytes of point-to-point messages.",
        "parmonc_collector_wait_seconds" => "Collector idle-wait segment durations.",
        "parmonc_heartbeat_gap_seconds" => "Gap between consecutive heartbeats per worker.",
        "parmonc_queue_depth" => "Receiver queue depth observed at each delivery.",
        "parmonc_averaging_pass_seconds" => "Duration of formula-(5) averaging passes.",
        "parmonc_save_point_seconds" => "Duration of save-point writes.",
        "parmonc_snapshot_age_seconds" => "Age of the stalest subtotal folded into a pass.",
        "parmonc_realizations_total" => "Realizations completed across all ranks.",
        "parmonc_messages_sent_total" => "Point-to-point messages sent, by tag.",
        "parmonc_messages_received_total" => "Point-to-point messages delivered, by tag.",
        "parmonc_bytes_sent_total" => "Payload bytes sent.",
        "parmonc_bytes_received_total" => "Payload bytes delivered.",
        "parmonc_collector_seconds_total" => "Collector timeline seconds, by activity.",
        "parmonc_eps_max" => "Largest absolute stochastic error after the last pass.",
        "parmonc_sample_volume" => "Total sample volume folded into the estimate.",
        "parmonc_span_seconds" => "Tracing span durations on the corrected run clock.",
        "parmonc_spans_total" => "Tracing spans closed, by phase.",
        "parmonc_wire_frames_in_total" => "Frames read off a socket link, by peer rank.",
        "parmonc_wire_bytes_in_total" => "Bytes read off a socket link, by peer rank.",
        "parmonc_wire_frames_out_total" => "Frames written to a socket link, by peer rank.",
        "parmonc_wire_bytes_out_total" => "Bytes written to a socket link, by peer rank.",
        "parmonc_reconnect_dials_total" => "Reconnect dials attempted, by peer rank.",
        "parmonc_dedup_dropped_frames_total" => {
            "Duplicate frames dropped by exactly-once dedup, by peer rank."
        }
        "parmonc_forwarded_events_dropped_total" => {
            "Events a forwarding worker's sinks failed to write, by peer rank."
        }
        _ => "Metric derived from the parmonc monitor event stream.",
    }
}

/// Validates Prometheus text exposition format: comment/TYPE grammar,
/// sample-line grammar, and histogram invariants (cumulative buckets
/// non-decreasing, `_count` consistent with the `+Inf` bucket).
///
/// # Errors
///
/// Describes the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_labels(s: &str) -> bool {
        // `name="value",...` — values may not contain unescaped quotes.
        s.split(',').all(|pair| {
            pair.split_once('=').is_some_and(|(k, v)| {
                valid_name(k) && v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
            })
        })
    }

    // Histogram family → (cumulative buckets seen, count series value).
    let mut histograms: BTreeMap<String, (Vec<u64>, Option<f64>)> = BTreeMap::new();
    let mut typed_histograms: Vec<String> = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            match (words.next(), words.next()) {
                (Some("HELP"), Some(name)) if valid_name(name) => {}
                (Some("TYPE"), Some(name)) if valid_name(name) => {
                    let ty = words.next().unwrap_or_default();
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown metric type {ty:?}"));
                    }
                    if ty == "histogram" {
                        typed_histograms.push(name.to_string());
                    }
                }
                _ => return Err(format!("line {n}: malformed comment: {line:?}")),
            }
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: expected `name value`: {line:?}"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated labels: {line:?}"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        if let Some(labels) = labels {
            if !valid_labels(labels) {
                return Err(format!("line {n}: bad labels {labels:?}"));
            }
        }
        // Histogram bookkeeping.
        if let Some(family) = name.strip_suffix("_bucket") {
            if typed_histograms.iter().any(|h| h == family) {
                let cum = value.parse::<f64>().unwrap_or(f64::NAN) as u64;
                histograms
                    .entry(family.to_string())
                    .or_default()
                    .0
                    .push(cum);
            }
        } else if let Some(family) = name.strip_suffix("_count") {
            if typed_histograms.iter().any(|h| h == family) {
                histograms.entry(family.to_string()).or_default().1 = value.parse::<f64>().ok();
            }
        }
    }

    for name in &typed_histograms {
        let Some((buckets, count)) = histograms.get(name) else {
            return Err(format!("histogram {name} has no _bucket series"));
        };
        if buckets.windows(2).any(|w| w[1] < w[0]) {
            return Err(format!("histogram {name} buckets are not cumulative"));
        }
        match (buckets.last(), count) {
            (Some(last), Some(count)) if *last as f64 == *count => {}
            _ => return Err(format!("histogram {name}: +Inf bucket and _count disagree")),
        }
    }
    Ok(())
}

/// Per-rank progress deltas the sink keeps between `realizations`
/// events, plus exposition pacing state.
#[derive(Debug, Default)]
struct DeriveState {
    /// rank → (completed, compute_seconds) at the last event.
    progress: BTreeMap<usize, (u64, f64)>,
    /// heartbeat source rank → `time_s` of its last heartbeat.
    last_heartbeat: BTreeMap<usize, f64>,
    /// Open tracing span → its `span_started` timestamp, so
    /// `span_ended` can feed the duration histogram.
    open_spans: BTreeMap<u64, f64>,
    /// Events recorded since `metrics.prom` was last rewritten.
    since_write: u32,
}

/// Cap on tracked open spans: beyond this, the stalest-id entry is
/// evicted so a trace with lost `span_ended` events cannot grow the
/// sink without bound.
const MAX_OPEN_SPANS: usize = 4096;

/// How many events may elapse between periodic `metrics.prom`
/// rewrites (the file is also rewritten on every flush).
const WRITE_EVERY: u32 = 256;

/// An [`EventSink`] that derives the metrics plane from the event
/// stream: counters, gauges and latency/size histograms, optionally
/// exposed as a Prometheus text file rewritten periodically and at
/// flush.
///
/// Because it consumes the same events every engine already emits,
/// attaching it adds **no new instrumentation call sites** anywhere.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    state: Mutex<DeriveState>,
    prom_path: Option<PathBuf>,
}

impl fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsSink")
            .field("prom_path", &self.prom_path)
            .finish_non_exhaustive()
    }
}

/// Static digit labels so hot events never allocate a label string
/// (message tags are tiny integers).
fn tag_label(tag: u32) -> &'static str {
    match tag {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        4 => "4",
        5 => "5",
        6 => "6",
        7 => "7",
        8 => "8",
        9 => "9",
        _ => "other",
    }
}

fn sent_counter(tag: u32) -> &'static str {
    match tag_label(tag) {
        "0" => "parmonc_messages_sent_total{tag=\"0\"}",
        "1" => "parmonc_messages_sent_total{tag=\"1\"}",
        "2" => "parmonc_messages_sent_total{tag=\"2\"}",
        "3" => "parmonc_messages_sent_total{tag=\"3\"}",
        "4" => "parmonc_messages_sent_total{tag=\"4\"}",
        "5" => "parmonc_messages_sent_total{tag=\"5\"}",
        "6" => "parmonc_messages_sent_total{tag=\"6\"}",
        "7" => "parmonc_messages_sent_total{tag=\"7\"}",
        "8" => "parmonc_messages_sent_total{tag=\"8\"}",
        "9" => "parmonc_messages_sent_total{tag=\"9\"}",
        _ => "parmonc_messages_sent_total{tag=\"other\"}",
    }
}

fn received_counter(tag: u32) -> &'static str {
    match tag_label(tag) {
        "0" => "parmonc_messages_received_total{tag=\"0\"}",
        "1" => "parmonc_messages_received_total{tag=\"1\"}",
        "2" => "parmonc_messages_received_total{tag=\"2\"}",
        "3" => "parmonc_messages_received_total{tag=\"3\"}",
        "4" => "parmonc_messages_received_total{tag=\"4\"}",
        "5" => "parmonc_messages_received_total{tag=\"5\"}",
        "6" => "parmonc_messages_received_total{tag=\"6\"}",
        "7" => "parmonc_messages_received_total{tag=\"7\"}",
        "8" => "parmonc_messages_received_total{tag=\"8\"}",
        "9" => "parmonc_messages_received_total{tag=\"9\"}",
        _ => "parmonc_messages_received_total{tag=\"other\"}",
    }
}

/// Spans are emitted per exchange batch on the hot path, so the
/// per-phase counter names are static like the tag counters.
fn span_counter(phase: crate::event::SpanPhase) -> &'static str {
    use crate::event::SpanPhase;
    match phase {
        SpanPhase::StreamPosition => "parmonc_spans_total{phase=\"stream_position\"}",
        SpanPhase::RealizationBatch => "parmonc_spans_total{phase=\"realization_batch\"}",
        SpanPhase::SubtotalSend => "parmonc_spans_total{phase=\"subtotal_send\"}",
        SpanPhase::CollectorMerge => "parmonc_spans_total{phase=\"collector_merge\"}",
        SpanPhase::Checkpoint => "parmonc_spans_total{phase=\"checkpoint\"}",
        SpanPhase::RelayMerge => "parmonc_spans_total{phase=\"relay_merge\"}",
        SpanPhase::Reconnect => "parmonc_spans_total{phase=\"reconnect\"}",
    }
}

/// The runner's heartbeat message tag (`parmonc::messages`): tag-4
/// deliveries drive the heartbeat-gap histogram.
const TAG_HEARTBEAT: u32 = 4;

impl MetricsSink {
    /// A sink aggregating into a fresh registry, with no file output.
    #[must_use]
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// A sink aggregating into an existing registry.
    #[must_use]
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry,
            state: Mutex::new(DeriveState::default()),
            prom_path: None,
        }
    }

    /// Additionally writes Prometheus text exposition to `path`,
    /// rewritten every 256 events and at every flush.
    #[must_use]
    pub fn with_prometheus_output(mut self, path: impl Into<PathBuf>) -> Self {
        self.prom_path = Some(path.into());
        self
    }

    /// The registry this sink aggregates into.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Rewrites `metrics.prom` if an output path is configured. Write
    /// errors are ignored: exposition is advisory and must never fail
    /// a run (trace-line loss, by contrast, is counted by the jsonl
    /// sink).
    fn write_prom(&self) {
        if let Some(path) = &self.prom_path {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::write(path, self.registry.render_prometheus());
        }
    }
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for MetricsSink {
    fn record(&self, event: &Event) {
        let r = &*self.registry;
        match &event.kind {
            EventKind::RunStarted {
                processors,
                max_sample_volume,
                transport,
                ..
            } => {
                r.inc_counter("parmonc_runs_started_total", 1.0);
                r.set_gauge("parmonc_processors", *processors as f64);
                r.set_gauge("parmonc_max_sample_volume", *max_sample_volume as f64);
                if let Some(transport) = transport {
                    // Prometheus info-style gauge: the transport rides
                    // as a label, the value is always 1.
                    r.set_gauge(
                        match transport {
                            crate::event::RunTransport::Threads => {
                                "parmonc_transport_info{transport=\"threads\"}"
                            }
                            crate::event::RunTransport::Processes => {
                                "parmonc_transport_info{transport=\"processes\"}"
                            }
                            crate::event::RunTransport::Tcp => {
                                "parmonc_transport_info{transport=\"tcp\"}"
                            }
                        },
                        1.0,
                    );
                }
            }
            EventKind::Realizations {
                completed,
                compute_seconds,
            } => {
                let rank = event.rank.unwrap_or(0);
                let mut state = self.state.lock().expect("metrics sink poisoned");
                let (prev_n, prev_t) = state.progress.get(&rank).copied().unwrap_or((0, 0.0));
                state.progress.insert(rank, (*completed, *compute_seconds));
                drop(state);
                let dn = completed.saturating_sub(prev_n);
                if dn > 0 {
                    r.inc_counter("parmonc_realizations_total", dn as f64);
                    let dt = compute_seconds - prev_t;
                    if dt >= 0.0 {
                        // One sample per exchange batch: the batch's
                        // mean per-realization compute time.
                        r.observe("parmonc_realization_seconds", dt / dn as f64);
                    }
                }
            }
            EventKind::MessageSent { tag, bytes, .. } => {
                r.inc_counter(sent_counter(*tag), 1.0);
                r.inc_counter("parmonc_bytes_sent_total", *bytes as f64);
                r.observe("parmonc_message_bytes", *bytes as f64);
            }
            EventKind::MessageReceived {
                source,
                tag,
                bytes,
                queue_depth,
            } => {
                r.inc_counter(received_counter(*tag), 1.0);
                r.inc_counter("parmonc_bytes_received_total", *bytes as f64);
                r.observe("parmonc_queue_depth", *queue_depth as f64);
                if *tag == TAG_HEARTBEAT {
                    let mut state = self.state.lock().expect("metrics sink poisoned");
                    let prev = state.last_heartbeat.insert(*source, event.time_s);
                    drop(state);
                    if let Some(prev) = prev {
                        r.observe("parmonc_heartbeat_gap_seconds", event.time_s - prev);
                    }
                }
            }
            EventKind::QueueHighWater { depth } => {
                r.max_gauge("parmonc_queue_high_water", *depth as f64);
            }
            EventKind::AveragingPass {
                volume,
                duration_seconds,
                eps_max,
                max_snapshot_age_seconds,
            } => {
                r.inc_counter("parmonc_averaging_passes_total", 1.0);
                r.observe("parmonc_averaging_pass_seconds", *duration_seconds);
                r.set_gauge("parmonc_sample_volume", *volume as f64);
                r.set_gauge("parmonc_run_time_seconds", event.time_s);
                if let Some(eps) = eps_max {
                    r.set_gauge("parmonc_eps_max", *eps);
                }
                if let Some(age) = max_snapshot_age_seconds {
                    r.observe("parmonc_snapshot_age_seconds", *age);
                }
            }
            EventKind::SavePoint {
                duration_seconds, ..
            } => {
                r.inc_counter("parmonc_save_points_total", 1.0);
                r.observe("parmonc_save_point_seconds", *duration_seconds);
            }
            EventKind::CollectorSegment {
                activity,
                start_s,
                end_s,
            } => {
                let duration = end_s - start_s;
                let key = match activity.as_str() {
                    "computing" => "parmonc_collector_seconds_total{activity=\"computing\"}",
                    "receiving" => "parmonc_collector_seconds_total{activity=\"receiving\"}",
                    "saving" => "parmonc_collector_seconds_total{activity=\"saving\"}",
                    _ => "parmonc_collector_seconds_total{activity=\"waiting\"}",
                };
                r.inc_counter(key, duration);
                if activity.as_str() == "waiting" {
                    r.observe("parmonc_collector_wait_seconds", duration);
                }
            }
            EventKind::RunCompleted {
                realizations,
                t_comp_seconds,
                ..
            } => {
                r.inc_counter("parmonc_runs_completed_total", 1.0);
                r.set_gauge("parmonc_total_realizations", *realizations as f64);
                r.set_gauge("parmonc_t_comp_seconds", *t_comp_seconds);
            }
            EventKind::FaultInjected { fault, .. } => {
                // Faults are rare; a per-event label allocation is fine.
                r.inc_counter(
                    &format!("parmonc_faults_injected_total{{fault=\"{fault}\"}}"),
                    1.0,
                );
            }
            EventKind::WorkerLost { .. } => {
                r.inc_counter("parmonc_workers_lost_total", 1.0);
            }
            EventKind::WorkReassigned { realizations, .. } => {
                r.inc_counter(
                    "parmonc_reassigned_realizations_total",
                    *realizations as f64,
                );
            }
            EventKind::CheckpointRecovered { .. } => {
                r.inc_counter("parmonc_checkpoint_recoveries_total", 1.0);
            }
            EventKind::MetricsSnapshot {
                functional,
                n,
                mean,
                err,
            } => {
                r.set_gauge("parmonc_sample_volume", *n as f64);
                if let Some(mean) = mean {
                    r.set_gauge(
                        &format!("parmonc_estimate_mean{{functional=\"{functional}\"}}"),
                        *mean,
                    );
                }
                if let Some(err) = err {
                    r.set_gauge(
                        &format!("parmonc_estimate_err{{functional=\"{functional}\"}}"),
                        *err,
                    );
                }
            }
            EventKind::TargetPrecisionReached { n, eps_max, target } => {
                r.inc_counter("parmonc_target_precision_reached_total", 1.0);
                r.set_gauge("parmonc_target_precision_volume", *n as f64);
                r.set_gauge("parmonc_eps_max", *eps_max);
                r.set_gauge("parmonc_eps_target", *target);
            }
            EventKind::WorkerJoined { .. } => {
                r.inc_counter("parmonc_workers_joined_total", 1.0);
            }
            EventKind::WorkerLeft { .. } => {
                r.inc_counter("parmonc_workers_left_total", 1.0);
            }
            EventKind::WorkerReconnected { .. } => {
                r.inc_counter("parmonc_workers_reconnected_total", 1.0);
            }
            EventKind::CollectorResumed { .. } => {
                r.inc_counter("parmonc_collector_resumes_total", 1.0);
            }
            EventKind::TornFrame { .. } => {
                r.inc_counter("parmonc_torn_frames_total", 1.0);
            }
            EventKind::SpanStarted { span, .. } => {
                let mut state = self.state.lock().expect("metrics sink poisoned");
                state.open_spans.insert(*span, event.time_s);
                // A lost span_ended must not pin memory forever.
                if state.open_spans.len() > MAX_OPEN_SPANS {
                    let stalest = state.open_spans.keys().next().copied();
                    if let Some(stalest) = stalest {
                        state.open_spans.remove(&stalest);
                    }
                }
            }
            EventKind::SpanEnded { span, phase } => {
                let started = {
                    let mut state = self.state.lock().expect("metrics sink poisoned");
                    state.open_spans.remove(span)
                };
                r.inc_counter(span_counter(*phase), 1.0);
                if let Some(started) = started {
                    let duration = event.time_s - started;
                    if duration >= 0.0 {
                        r.observe("parmonc_span_seconds", duration);
                    }
                }
            }
            EventKind::WireStats {
                link,
                frames_in,
                bytes_in,
                frames_out,
                bytes_out,
                dials,
                dedup_dropped,
                events_dropped,
            } => {
                // One event per link teardown: per-event label
                // allocation is fine here, as for faults.
                let by_link = |name: &str| format!("{name}{{link=\"{link}\"}}");
                r.inc_counter(&by_link("parmonc_wire_frames_in_total"), *frames_in as f64);
                r.inc_counter(&by_link("parmonc_wire_bytes_in_total"), *bytes_in as f64);
                r.inc_counter(
                    &by_link("parmonc_wire_frames_out_total"),
                    *frames_out as f64,
                );
                r.inc_counter(&by_link("parmonc_wire_bytes_out_total"), *bytes_out as f64);
                if *dials > 0 {
                    r.inc_counter(&by_link("parmonc_reconnect_dials_total"), *dials as f64);
                }
                if *dedup_dropped > 0 {
                    r.inc_counter(
                        &by_link("parmonc_dedup_dropped_frames_total"),
                        *dedup_dropped as f64,
                    );
                }
                if *events_dropped > 0 {
                    r.inc_counter(
                        &by_link("parmonc_forwarded_events_dropped_total"),
                        *events_dropped as f64,
                    );
                }
            }
        }
        if self.prom_path.is_some() {
            let mut state = self.state.lock().expect("metrics sink poisoned");
            state.since_write += 1;
            let due = state.since_write >= WRITE_EVERY;
            if due {
                state.since_write = 0;
            }
            drop(state);
            if due {
                self.write_prom();
            }
        }
    }

    fn flush(&self) {
        self.write_prom();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollectorActivity, RunMode};

    /// A tiny deterministic generator for property tests (no external
    /// RNG dependency; the obs crate is dependency-free).
    struct SplitMix(u64);

    impl SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Exact quantile of a sorted slice, matching the histogram's
    /// rank convention (`ceil(q·n)`, 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = LogHistogram::new();
        for v in [3.0, 1.0, 2.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
        assert_eq!(h.mean(), Some(2.0));
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn zero_and_negative_samples_use_the_zero_bucket() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-1.0);
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.9), Some(0.0));
    }

    #[test]
    fn quantiles_match_exact_within_documented_bound() {
        // Samples spanning six orders of magnitude, like mixed
        // timing/byte metrics do.
        let mut rng = SplitMix(7);
        let mut samples: Vec<f64> = (0..2000)
            .map(|_| 10f64.powf(rng.next_f64() * 6.0 - 3.0))
            .collect();
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.observe(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.05,
                "q={q}: approx {approx} vs exact {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn merged_histograms_equal_concatenated_samples() {
        let mut rng = SplitMix(42);
        let samples: Vec<f64> = (0..900).map(|_| rng.next_f64() * 100.0).collect();
        let mut whole = LogHistogram::new();
        for &v in &samples {
            whole.observe(v);
        }
        // Three "per-rank" shards, merged.
        let mut merged = LogHistogram::new();
        for shard in samples.chunks(300) {
            let mut h = LogHistogram::new();
            for &v in shard {
                h.observe(v);
            }
            merged.merge(&h);
        }
        // Bucket structure is exactly equal (summation order only
        // perturbs the exact `sum` in the last ulps).
        assert_eq!(merged.cumulative_buckets(), whole.cumulative_buckets());
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.sum() - whole.sum()).abs() <= 1e-9 * whole.sum().abs());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn registry_scalars_and_render() {
        let r = MetricsRegistry::new();
        r.inc_counter("parmonc_runs_started_total", 1.0);
        r.inc_counter("parmonc_runs_started_total", 1.0);
        r.set_gauge("parmonc_eps_max", 0.25);
        r.max_gauge("parmonc_queue_high_water", 3.0);
        r.max_gauge("parmonc_queue_high_water", 2.0);
        r.observe("parmonc_message_bytes", 40.0);
        r.observe("parmonc_message_bytes", 40.0);
        assert_eq!(r.value("parmonc_runs_started_total"), Some(2.0));
        assert_eq!(r.value("parmonc_queue_high_water"), Some(3.0));
        assert_eq!(r.histogram("parmonc_message_bytes").unwrap().count(), 2);

        let text = r.render_prometheus();
        validate_prometheus_text(&text).expect("valid exposition");
        assert!(text.contains("# TYPE parmonc_runs_started_total counter"));
        assert!(text.contains("# TYPE parmonc_eps_max gauge"));
        assert!(text.contains("# TYPE parmonc_message_bytes histogram"));
        assert!(text.contains("parmonc_message_bytes_count 2"));
        assert!(text.contains("parmonc_message_bytes_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc_counter("c", 2.0);
        b.inc_counter("c", 3.0);
        a.observe("h", 1.0);
        b.observe("h", 2.0);
        b.set_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.value("c"), Some(5.0));
        assert_eq!(a.value("g"), Some(9.0));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn prometheus_validator_rejects_malformed_text() {
        for (bad, why) in [
            ("metric", "no value"),
            ("1metric 5", "bad name"),
            ("metric notanumber", "bad value"),
            ("metric{le=\"0.5\" 1", "unterminated labels"),
            ("# TYPE m sideways\nm 1", "unknown type"),
        ] {
            assert!(validate_prometheus_text(bad).is_err(), "{why}: {bad:?}");
        }
        // Non-cumulative histogram buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_prometheus_text(bad).is_err());
        // _count disagreeing with +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(validate_prometheus_text(bad).is_err());
    }

    fn ev(time_s: f64, rank: Option<usize>, kind: EventKind) -> Event {
        Event::at(time_s, rank, kind)
    }

    #[test]
    fn sink_derives_metrics_from_the_event_stream() {
        let sink = MetricsSink::new();
        let r = sink.registry();
        sink.record(&ev(
            0.0,
            None,
            EventKind::RunStarted {
                mode: RunMode::Threads,
                processors: 4,
                max_sample_volume: 1000,
                seqnum: Some(1),
                nrow: Some(1),
                ncol: Some(1),
                transport: Some(crate::event::RunTransport::Threads),
            },
        ));
        assert_eq!(
            r.value("parmonc_transport_info{transport=\"threads\"}"),
            Some(1.0)
        );
        // Cumulative progress: 10 realizations in 1 s, then 10 more in 3 s.
        sink.record(&ev(
            1.0,
            Some(1),
            EventKind::Realizations {
                completed: 10,
                compute_seconds: 1.0,
            },
        ));
        sink.record(&ev(
            4.0,
            Some(1),
            EventKind::Realizations {
                completed: 20,
                compute_seconds: 4.0,
            },
        ));
        assert_eq!(r.value("parmonc_realizations_total"), Some(20.0));
        let per_real = r.histogram("parmonc_realization_seconds").unwrap();
        assert_eq!(per_real.count(), 2);
        assert_eq!(per_real.min(), Some(0.1));
        assert_eq!(per_real.max(), Some(0.3));

        // Messages: one subtotal send, one heartbeat pair for the gap.
        sink.record(&ev(
            1.0,
            Some(1),
            EventKind::MessageSent {
                dest: 0,
                tag: 1,
                bytes: 40,
            },
        ));
        sink.record(&ev(
            2.0,
            Some(0),
            EventKind::MessageReceived {
                source: 1,
                tag: 4,
                bytes: 8,
                queue_depth: 2,
            },
        ));
        sink.record(&ev(
            3.5,
            Some(0),
            EventKind::MessageReceived {
                source: 1,
                tag: 4,
                bytes: 8,
                queue_depth: 0,
            },
        ));
        assert_eq!(r.value("parmonc_messages_sent_total{tag=\"1\"}"), Some(1.0));
        assert_eq!(
            r.value("parmonc_messages_received_total{tag=\"4\"}"),
            Some(2.0)
        );
        let gap = r.histogram("parmonc_heartbeat_gap_seconds").unwrap();
        assert_eq!(gap.count(), 1);
        assert_eq!(gap.max(), Some(1.5));

        // Collector wait and the estimate trajectory.
        sink.record(&ev(
            5.0,
            Some(0),
            EventKind::CollectorSegment {
                activity: CollectorActivity::Waiting,
                start_s: 4.0,
                end_s: 5.0,
            },
        ));
        sink.record(&ev(
            5.5,
            Some(0),
            EventKind::MetricsSnapshot {
                functional: 0,
                n: 20,
                mean: Some(0.5),
                err: Some(0.01),
            },
        ));
        sink.record(&ev(
            5.6,
            Some(0),
            EventKind::TargetPrecisionReached {
                n: 20,
                eps_max: 0.01,
                target: 0.02,
            },
        ));
        assert_eq!(
            r.histogram("parmonc_collector_wait_seconds")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            r.value("parmonc_estimate_mean{functional=\"0\"}"),
            Some(0.5)
        );
        assert_eq!(r.value("parmonc_target_precision_reached_total"), Some(1.0));

        let text = r.render_prometheus();
        validate_prometheus_text(&text).expect("derived exposition is valid");
    }

    #[test]
    fn span_and_wire_events_derive_trace_metrics() {
        use crate::event::SpanPhase;
        let sink = MetricsSink::new();
        let r = sink.registry();
        sink.record(&ev(
            1.0,
            Some(1),
            EventKind::SpanStarted {
                span: 42,
                parent: None,
                phase: SpanPhase::RealizationBatch,
            },
        ));
        sink.record(&ev(
            1.5,
            Some(1),
            EventKind::SpanEnded {
                span: 42,
                phase: SpanPhase::RealizationBatch,
            },
        ));
        // An end with no recorded start still counts, just without a
        // duration sample.
        sink.record(&ev(
            2.0,
            Some(1),
            EventKind::SpanEnded {
                span: 43,
                phase: SpanPhase::Checkpoint,
            },
        ));
        sink.record(&ev(
            3.0,
            Some(0),
            EventKind::WireStats {
                link: 2,
                frames_in: 10,
                bytes_in: 800,
                frames_out: 3,
                bytes_out: 90,
                dials: 2,
                dedup_dropped: 1,
                events_dropped: 0,
            },
        ));
        assert_eq!(
            r.value("parmonc_spans_total{phase=\"realization_batch\"}"),
            Some(1.0)
        );
        assert_eq!(
            r.value("parmonc_spans_total{phase=\"checkpoint\"}"),
            Some(1.0)
        );
        let h = r.histogram("parmonc_span_seconds").unwrap();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.5).abs() < 1e-12);
        assert_eq!(
            r.value("parmonc_wire_frames_in_total{link=\"2\"}"),
            Some(10.0)
        );
        assert_eq!(
            r.value("parmonc_wire_bytes_out_total{link=\"2\"}"),
            Some(90.0)
        );
        assert_eq!(
            r.value("parmonc_reconnect_dials_total{link=\"2\"}"),
            Some(2.0)
        );
        assert_eq!(
            r.value("parmonc_dedup_dropped_frames_total{link=\"2\"}"),
            Some(1.0)
        );
        // No forwarded-drop series when the count is zero.
        assert_eq!(
            r.value("parmonc_forwarded_events_dropped_total{link=\"2\"}"),
            None
        );
        validate_prometheus_text(&r.render_prometheus()).expect("valid exposition");
    }

    #[test]
    fn sink_writes_prometheus_file_on_flush() {
        let dir = std::env::temp_dir().join(format!("parmonc-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("monitor/metrics.prom");
        let sink = MetricsSink::new().with_prometheus_output(&path);
        sink.record(&ev(0.5, Some(0), EventKind::QueueHighWater { depth: 4 }));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_prometheus_text(&text).expect("file parses as Prometheus text");
        assert!(text.contains("parmonc_queue_high_water 4"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
