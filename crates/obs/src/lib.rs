//! Unified run-monitor observability for PARMONC.
//!
//! Every engine in the workspace — the real-thread runner in
//! `parmonc` (core), the in-process message substrate in
//! `parmonc-mpi`, and the virtual-time cluster simulator in
//! `parmonc-simcluster` — reports progress through the same small
//! vocabulary of events defined here. A monitored run writes one JSON
//! object per event to `parmonc_data/monitor/run_metrics.jsonl` and
//! prints an end-of-run summary table; the schema is documented in
//! `docs/observability.md` and machine-checked by [`schema::validate_line`].
//!
//! The layer is opt-in and zero-cost when off: instrumented code holds
//! a [`Monitor`], and the disabled monitor ([`Monitor::disabled`], also
//! the `Default`) reduces every emission to a single branch.
//!
//! On top of the event plane sits the **metrics plane**
//! ([`MetricsRegistry`], [`MetricsSink`], [`ConvergenceTracker`]):
//! counters, gauges and mergeable log-bucketed histograms derived
//! entirely from the event stream (no extra instrumentation call
//! sites), exposed as Prometheus text at
//! `parmonc_data/monitor/metrics.prom` and queryable post-hoc from the
//! jsonl trace via [`schema::parse_line`] and the `parmonc-trace` CLI.
//!
//! # Example
//!
//! ```
//! use parmonc_obs::{EventKind, MemorySink, Monitor, MonitorSummary, RunMode, RunTransport};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
//!
//! monitor.emit(None, EventKind::RunStarted {
//!     mode: RunMode::Threads,
//!     processors: 4,
//!     max_sample_volume: 1_000,
//!     seqnum: Some(1),
//!     nrow: Some(1),
//!     ncol: Some(1),
//!     transport: Some(RunTransport::Threads),
//! });
//! monitor.emit(Some(2), EventKind::Realizations { completed: 250, compute_seconds: 0.8 });
//!
//! let events = sink.snapshot();
//! // Every event round-trips through the documented JSONL schema…
//! for event in &events {
//!     parmonc_obs::schema::validate_line(&event.to_json_line()).unwrap();
//! }
//! // …and folds into the end-of-run summary.
//! let summary = MonitorSummary::from_events(&events);
//! assert_eq!(summary.processors, Some(4));
//! assert_eq!(summary.ranks[&2].realizations, 250);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod convergence;
mod event;
mod metrics;
mod monitor;
pub mod schema;
mod span;
mod summary;

pub use convergence::{ConvergenceTracker, TrajectoryPoint};
pub use event::{
    CollectorActivity, Event, EventKind, RunMode, RunTransport, SpanPhase, SCHEMA_VERSION,
};
pub use metrics::{
    validate_prometheus_text, LogHistogram, MetricsRegistry, MetricsSink, SUB_BUCKETS_PER_OCTAVE,
};
pub use monitor::{EventSink, JsonlSink, MemorySink, Monitor};
pub use span::SpanEmitter;
pub use summary::{MonitorSummary, RankStats};
