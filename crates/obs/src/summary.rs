//! End-of-run aggregation: folds a monitor trace into a
//! [`MonitorSummary`] and renders the table printed by `parmonc-demo`
//! and `fig2_threads`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{CollectorActivity, Event, EventKind, RunMode, RunTransport};

/// Per-rank aggregates extracted from a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Realizations completed (last cumulative `realizations` report).
    pub realizations: u64,
    /// Seconds spent computing realizations (last cumulative report).
    pub compute_seconds: f64,
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
}

/// Everything the end-of-run summary table needs, folded from one
/// monitor trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorSummary {
    /// Which engine produced the trace.
    pub mode: Option<RunMode>,
    /// Which transport substrate carried rank traffic (absent for
    /// simulated runs and pre-transport traces).
    pub transport: Option<RunTransport>,
    /// Processor count from `run_started`.
    pub processors: Option<usize>,
    /// Target sample volume from `run_started`.
    pub max_sample_volume: Option<u64>,
    /// Total events in the trace.
    pub events: u64,
    /// Per-rank aggregates, keyed by rank.
    pub ranks: BTreeMap<usize, RankStats>,
    /// Messages received across all ranks.
    pub messages_received: u64,
    /// Payload bytes received across all ranks.
    pub bytes_received: u64,
    /// Largest receive-queue depth seen anywhere.
    pub max_queue_depth: u64,
    /// Number of collector averaging passes.
    pub averaging_passes: u64,
    /// Total seconds spent in averaging passes.
    pub averaging_seconds: f64,
    /// `eps_max` from the last averaging pass that carried one.
    pub final_eps_max: Option<f64>,
    /// Largest snapshot age any averaging pass observed.
    pub max_snapshot_age_seconds: Option<f64>,
    /// Number of save-points written.
    pub save_points: u64,
    /// Total seconds spent writing save-points.
    pub save_seconds: f64,
    /// Seconds the collector spent per activity (from
    /// `collector_segment` events).
    pub collector_seconds: BTreeMap<&'static str, f64>,
    /// Realizations from `run_completed`.
    pub total_realizations: Option<u64>,
    /// The paper's `T_comp` from `run_completed`.
    pub t_comp_seconds: Option<f64>,
    /// Faults the deterministic fault plane injected.
    pub faults_injected: u64,
    /// Workers the collector declared dead.
    pub workers_lost: u64,
    /// Realizations reassigned from dead workers to survivors.
    pub reassigned_realizations: u64,
    /// Elastic-membership joins (TCP backend): workers that completed
    /// the handshake and were leased a rank.
    pub workers_joined: u64,
    /// Elastic-membership departures (TCP backend): connections that
    /// closed, whether by worker exit, crash, or run shutdown.
    pub workers_left: u64,
    /// Leased workers that re-attached after a broken connection or a
    /// collector restart (TCP backend).
    pub workers_reconnected: u64,
    /// Collector restarts that resumed an interrupted run from the
    /// persisted lease table and checkpoint (TCP backend).
    pub collector_resumes: u64,
    /// Frames rejected because the sender died (or the fault plane cut
    /// the link) mid-write.
    pub torn_frames: u64,
    /// Resumes recovered from a `.bak` checkpoint generation.
    pub checkpoint_recoveries: u64,
    /// Convergence snapshots (`metrics_snapshot`) in the trace.
    pub metrics_snapshots: u64,
    /// The `(n, eps_max, target)` of the `target_precision_reached`
    /// event, if the run declared one.
    pub target_precision: Option<(u64, f64, f64)>,
    /// Trace lines the sinks failed to write (full disk etc.) — set by
    /// the caller from [`crate::Monitor::flush`], since dropped lines
    /// are by definition not in the event list.
    pub dropped_events: u64,
    /// Tracing spans closed (`span_ended` events).
    pub spans_closed: u64,
    /// Seconds per span phase, summed over spans whose start and end
    /// both appear in the trace (corrected run clock).
    pub span_seconds: BTreeMap<&'static str, f64>,
    /// `wire_stats` events in the trace — one per torn-down socket
    /// link end.
    pub wire_links: u64,
    /// Frames read across all socket links.
    pub wire_frames_in: u64,
    /// Bytes read across all socket links.
    pub wire_bytes_in: u64,
    /// Frames written across all socket links.
    pub wire_frames_out: u64,
    /// Bytes written across all socket links.
    pub wire_bytes_out: u64,
    /// Reconnect dials across all links.
    pub reconnect_dials: u64,
    /// Duplicate frames dropped by exactly-once dedup across all links.
    pub dedup_dropped_frames: u64,
    /// Events forwarding workers' sinks failed to write (reported in
    /// their `wire_stats`) — far-side trace truncation, distinct from
    /// this process's own `dropped_events`.
    pub forwarded_dropped_events: u64,
}

impl MonitorSummary {
    /// Folds a trace into a summary. Order-tolerant except that
    /// cumulative `realizations` reports take the per-rank maximum.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = Self {
            events: events.len() as u64,
            ..Self::default()
        };
        for event in events {
            match &event.kind {
                EventKind::RunStarted {
                    mode,
                    processors,
                    max_sample_volume,
                    transport,
                    ..
                } => {
                    s.mode = Some(*mode);
                    s.transport = *transport;
                    s.processors = Some(*processors);
                    s.max_sample_volume = Some(*max_sample_volume);
                }
                EventKind::Realizations {
                    completed,
                    compute_seconds,
                } => {
                    if let Some(rank) = event.rank {
                        let stats = s.ranks.entry(rank).or_default();
                        stats.realizations = stats.realizations.max(*completed);
                        if compute_seconds.is_finite() {
                            stats.compute_seconds = stats.compute_seconds.max(*compute_seconds);
                        }
                    }
                }
                EventKind::MessageSent { bytes, .. } => {
                    if let Some(rank) = event.rank {
                        let stats = s.ranks.entry(rank).or_default();
                        stats.messages_sent += 1;
                        stats.bytes_sent += bytes;
                    }
                }
                EventKind::MessageReceived {
                    bytes, queue_depth, ..
                } => {
                    s.messages_received += 1;
                    s.bytes_received += bytes;
                    s.max_queue_depth = s.max_queue_depth.max(*queue_depth);
                }
                EventKind::QueueHighWater { depth } => {
                    s.max_queue_depth = s.max_queue_depth.max(*depth);
                }
                EventKind::AveragingPass {
                    duration_seconds,
                    eps_max,
                    max_snapshot_age_seconds,
                    ..
                } => {
                    s.averaging_passes += 1;
                    s.averaging_seconds += duration_seconds;
                    if eps_max.is_some() {
                        s.final_eps_max = *eps_max;
                    }
                    if let Some(age) = max_snapshot_age_seconds {
                        s.max_snapshot_age_seconds =
                            Some(s.max_snapshot_age_seconds.map_or(*age, |m| m.max(*age)));
                    }
                }
                EventKind::SavePoint {
                    duration_seconds, ..
                } => {
                    s.save_points += 1;
                    s.save_seconds += duration_seconds;
                }
                EventKind::CollectorSegment {
                    activity,
                    start_s,
                    end_s,
                } => {
                    *s.collector_seconds.entry(activity.as_str()).or_insert(0.0) +=
                        (end_s - start_s).max(0.0);
                }
                EventKind::RunCompleted {
                    realizations,
                    t_comp_seconds,
                    ..
                } => {
                    s.total_realizations = Some(*realizations);
                    s.t_comp_seconds = Some(*t_comp_seconds);
                }
                EventKind::FaultInjected { .. } => {
                    s.faults_injected += 1;
                }
                EventKind::WorkerLost { .. } => {
                    s.workers_lost += 1;
                }
                EventKind::WorkReassigned { realizations, .. } => {
                    s.reassigned_realizations += realizations;
                }
                EventKind::CheckpointRecovered { .. } => {
                    s.checkpoint_recoveries += 1;
                }
                EventKind::MetricsSnapshot { .. } => {
                    s.metrics_snapshots += 1;
                }
                EventKind::TargetPrecisionReached { n, eps_max, target } => {
                    s.target_precision = Some((*n, *eps_max, *target));
                }
                EventKind::WorkerJoined { .. } => {
                    s.workers_joined += 1;
                }
                EventKind::WorkerLeft { .. } => {
                    s.workers_left += 1;
                }
                EventKind::WorkerReconnected { .. } => {
                    s.workers_reconnected += 1;
                }
                EventKind::CollectorResumed { .. } => {
                    s.collector_resumes += 1;
                }
                EventKind::TornFrame { .. } => {
                    s.torn_frames += 1;
                }
                EventKind::SpanStarted { .. } => {}
                EventKind::SpanEnded { .. } => {
                    s.spans_closed += 1;
                }
                EventKind::WireStats {
                    frames_in,
                    bytes_in,
                    frames_out,
                    bytes_out,
                    dials,
                    dedup_dropped,
                    events_dropped,
                    ..
                } => {
                    s.wire_links += 1;
                    s.wire_frames_in += frames_in;
                    s.wire_bytes_in += bytes_in;
                    s.wire_frames_out += frames_out;
                    s.wire_bytes_out += bytes_out;
                    s.reconnect_dials += dials;
                    s.dedup_dropped_frames += dedup_dropped;
                    s.forwarded_dropped_events += events_dropped;
                }
            }
        }
        // Second pass: pair span starts with ends by id — naturally
        // order-tolerant, so skewed multi-host delivery order cannot
        // change the per-phase totals.
        let mut starts: BTreeMap<u64, f64> = BTreeMap::new();
        for event in events {
            if let EventKind::SpanStarted { span, .. } = &event.kind {
                starts.insert(*span, event.time_s);
            }
        }
        for event in events {
            if let EventKind::SpanEnded { span, phase } = &event.kind {
                if let Some(started) = starts.get(span) {
                    let duration = (event.time_s - started).max(0.0);
                    *s.span_seconds.entry(phase.as_str()).or_insert(0.0) += duration;
                }
            }
        }
        s
    }

    /// Fraction of traced collector time spent in `activity`, if any
    /// segments were recorded.
    #[must_use]
    pub fn collector_fraction(&self, activity: CollectorActivity) -> Option<f64> {
        let total: f64 = self.collector_seconds.values().sum();
        if total > 0.0 {
            Some(
                self.collector_seconds
                    .get(activity.as_str())
                    .copied()
                    .unwrap_or(0.0)
                    / total,
            )
        } else {
            None
        }
    }

    /// Renders the human-readable summary table printed at the end of
    /// monitored runs.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run monitor summary ({} events)", self.events);
        if let (Some(mode), Some(m)) = (self.mode, self.processors) {
            let _ = write!(out, "  mode {} | processors {m}", mode.as_str());
            if let Some(transport) = self.transport {
                let _ = write!(out, " | transport {}", transport.as_str());
            }
            out.push('\n');
        }
        if let Some(n) = self.total_realizations {
            let _ = write!(out, "  realizations {n}");
            if let Some(t) = self.t_comp_seconds {
                let _ = write!(out, " | T_comp {t:.3} s");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "  messages received {} | bytes {} | max queue depth {}",
            self.messages_received, self.bytes_received, self.max_queue_depth
        );
        let _ = write!(
            out,
            "  averaging passes {} ({:.3} s) | save-points {} ({:.3} s)",
            self.averaging_passes, self.averaging_seconds, self.save_points, self.save_seconds
        );
        if let Some(eps) = self.final_eps_max {
            let _ = write!(out, " | eps_max {eps:.3e}");
        }
        out.push('\n');
        if let Some(age) = self.max_snapshot_age_seconds {
            let _ = writeln!(out, "  max snapshot age {age:.3} s");
        }
        if let Some((n, eps, target)) = self.target_precision {
            let _ = writeln!(
                out,
                "  target precision reached at n {n} (eps_max {eps:.3e} <= target {target:.3e})"
            );
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {} trace line(s) dropped (write failures) — trace is incomplete",
                self.dropped_events
            );
        }
        if self.forwarded_dropped_events > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {} forwarded event(s) dropped by worker-side sinks — \
                 remote traces are incomplete",
                self.forwarded_dropped_events
            );
        }
        if self.wire_links > 0 {
            let _ = writeln!(
                out,
                "  wire ({} link ends): frames in/out {}/{} | bytes in/out {}/{} | \
                 dials {} | dedup-dropped {}",
                self.wire_links,
                self.wire_frames_in,
                self.wire_frames_out,
                self.wire_bytes_in,
                self.wire_bytes_out,
                self.reconnect_dials,
                self.dedup_dropped_frames
            );
        }
        if self.spans_closed > 0 {
            let _ = write!(out, "  spans closed {}", self.spans_closed);
            if !self.span_seconds.is_empty() {
                let _ = write!(out, " | time by phase:");
                for phase in crate::event::SpanPhase::ALL {
                    if let Some(seconds) = self.span_seconds.get(phase) {
                        let _ = write!(out, " {phase} {seconds:.3} s");
                    }
                }
            }
            out.push('\n');
        }
        if self.workers_joined > 0 || self.workers_left > 0 {
            let _ = writeln!(
                out,
                "  workers joined {} | workers left {}",
                self.workers_joined, self.workers_left
            );
        }
        if self.workers_reconnected > 0 || self.collector_resumes > 0 || self.torn_frames > 0 {
            let _ = writeln!(
                out,
                "  workers reconnected {} | collector resumes {} | torn frames {}",
                self.workers_reconnected, self.collector_resumes, self.torn_frames
            );
        }
        if self.faults_injected > 0
            || self.workers_lost > 0
            || self.reassigned_realizations > 0
            || self.checkpoint_recoveries > 0
        {
            let _ = writeln!(
                out,
                "  faults injected {} | workers lost {} | reassigned {} | checkpoint recoveries {}",
                self.faults_injected,
                self.workers_lost,
                self.reassigned_realizations,
                self.checkpoint_recoveries
            );
        }
        if !self.collector_seconds.is_empty() {
            let total: f64 = self.collector_seconds.values().sum();
            let _ = write!(out, "  collector time:");
            for activity in [
                CollectorActivity::Computing,
                CollectorActivity::Receiving,
                CollectorActivity::Saving,
                CollectorActivity::Waiting,
            ] {
                if let Some(seconds) = self.collector_seconds.get(activity.as_str()) {
                    let _ = write!(
                        out,
                        " {} {:.1}%",
                        activity.as_str(),
                        100.0 * seconds / total
                    );
                }
            }
            out.push('\n');
        }
        if !self.ranks.is_empty() {
            let _ = writeln!(
                out,
                "  {:>4}  {:>14}  {:>12}  {:>9}  {:>12}",
                "rank", "realizations", "compute_s", "msgs_sent", "bytes_sent"
            );
            for (rank, stats) in &self.ranks {
                let _ = writeln!(
                    out,
                    "  {rank:>4}  {:>14}  {:>12.4}  {:>9}  {:>12}",
                    stats.realizations,
                    stats.compute_seconds,
                    stats.messages_sent,
                    stats.bytes_sent
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_s: f64, rank: Option<usize>, kind: EventKind) -> Event {
        Event::at(time_s, rank, kind)
    }

    #[test]
    fn folds_a_small_trace() {
        let events = vec![
            ev(
                0.0,
                None,
                EventKind::RunStarted {
                    mode: RunMode::Threads,
                    processors: 2,
                    max_sample_volume: 100,
                    seqnum: Some(1),
                    nrow: Some(1),
                    ncol: Some(1),
                    transport: Some(RunTransport::Processes),
                },
            ),
            ev(
                0.5,
                Some(1),
                EventKind::Realizations {
                    completed: 40,
                    compute_seconds: 0.4,
                },
            ),
            ev(
                1.0,
                Some(1),
                EventKind::Realizations {
                    completed: 60,
                    compute_seconds: 0.9,
                },
            ),
            ev(
                0.5,
                Some(1),
                EventKind::MessageSent {
                    dest: 0,
                    tag: 1,
                    bytes: 48,
                },
            ),
            ev(
                0.6,
                Some(0),
                EventKind::MessageReceived {
                    source: 1,
                    tag: 1,
                    bytes: 48,
                    queue_depth: 2,
                },
            ),
            ev(0.6, Some(0), EventKind::QueueHighWater { depth: 3 }),
            ev(
                0.7,
                Some(0),
                EventKind::AveragingPass {
                    volume: 60,
                    duration_seconds: 0.01,
                    eps_max: Some(0.05),
                    max_snapshot_age_seconds: Some(0.2),
                },
            ),
            ev(
                0.7,
                Some(0),
                EventKind::SavePoint {
                    volume: 60,
                    duration_seconds: 0.002,
                },
            ),
            ev(
                1.0,
                Some(0),
                EventKind::CollectorSegment {
                    activity: CollectorActivity::Receiving,
                    start_s: 0.0,
                    end_s: 0.75,
                },
            ),
            ev(
                1.0,
                Some(0),
                EventKind::CollectorSegment {
                    activity: CollectorActivity::Waiting,
                    start_s: 0.75,
                    end_s: 1.0,
                },
            ),
            ev(
                1.1,
                None,
                EventKind::RunCompleted {
                    realizations: 100,
                    t_comp_seconds: 1.1,
                    messages: 1,
                    bytes: 48,
                },
            ),
        ];
        let s = MonitorSummary::from_events(&events);
        assert_eq!(s.mode, Some(RunMode::Threads));
        assert_eq!(s.transport, Some(RunTransport::Processes));
        assert_eq!(s.processors, Some(2));
        assert_eq!(s.ranks[&1].realizations, 60);
        assert_eq!(s.ranks[&1].messages_sent, 1);
        assert_eq!(s.ranks[&1].bytes_sent, 48);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.averaging_passes, 1);
        assert_eq!(s.save_points, 1);
        assert_eq!(s.final_eps_max, Some(0.05));
        assert_eq!(s.max_snapshot_age_seconds, Some(0.2));
        assert_eq!(s.total_realizations, Some(100));
        assert_eq!(s.t_comp_seconds, Some(1.1));
        let frac = s.collector_fraction(CollectorActivity::Receiving).unwrap();
        assert!((frac - 0.75).abs() < 1e-12);

        let table = s.render_table();
        assert!(table.contains("mode threads"));
        assert!(table.contains("transport processes"));
        assert!(table.contains("max queue depth 3"));
        assert!(table.contains("rank"));
        assert!(table.contains("receiving 75.0%"));
    }

    #[test]
    fn folds_fault_events_and_renders_the_fault_line() {
        let events = vec![
            ev(
                0.1,
                Some(2),
                EventKind::FaultInjected {
                    fault: "rank_crash".into(),
                    detail: Some(50),
                },
            ),
            ev(
                0.5,
                Some(0),
                EventKind::WorkerLost {
                    worker: 2,
                    received_realizations: 40,
                },
            ),
            ev(
                0.5,
                Some(0),
                EventKind::WorkReassigned {
                    from_worker: 2,
                    to_worker: 1,
                    realizations: 30,
                },
            ),
            ev(
                0.5,
                Some(0),
                EventKind::WorkReassigned {
                    from_worker: 2,
                    to_worker: 3,
                    realizations: 30,
                },
            ),
            ev(0.0, None, EventKind::CheckpointRecovered { volume: 10 }),
        ];
        let s = MonitorSummary::from_events(&events);
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.workers_lost, 1);
        assert_eq!(s.reassigned_realizations, 60);
        assert_eq!(s.checkpoint_recoveries, 1);
        let table = s.render_table();
        assert!(table.contains("faults injected 1"));
        assert!(table.contains("workers lost 1"));
        assert!(table.contains("reassigned 60"));
    }

    #[test]
    fn empty_trace_summarizes_and_renders() {
        let s = MonitorSummary::from_events(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.collector_fraction(CollectorActivity::Waiting), None);
        let table = s.render_table();
        assert!(table.contains("0 events"));
        // No spurious sections on an empty trace.
        assert!(!table.contains("mode"));
        assert!(!table.contains("rank"));
        assert!(!table.contains("WARNING"));
    }

    /// A collector-only trace (rank 0 computing everything itself, no
    /// messages, no workers) folds and renders without a rank table
    /// misfire or a division by zero.
    #[test]
    fn collector_only_trace_summarizes() {
        let events = vec![
            ev(
                0.0,
                None,
                EventKind::RunStarted {
                    mode: RunMode::Threads,
                    processors: 1,
                    max_sample_volume: 50,
                    seqnum: Some(1),
                    nrow: Some(1),
                    ncol: Some(1),
                    transport: None,
                },
            ),
            ev(
                0.4,
                Some(0),
                EventKind::Realizations {
                    completed: 50,
                    compute_seconds: 0.4,
                },
            ),
            ev(
                0.5,
                Some(0),
                EventKind::AveragingPass {
                    volume: 50,
                    duration_seconds: 0.01,
                    eps_max: Some(0.1),
                    max_snapshot_age_seconds: None,
                },
            ),
            ev(
                0.5,
                Some(0),
                EventKind::CollectorSegment {
                    activity: CollectorActivity::Computing,
                    start_s: 0.0,
                    end_s: 0.5,
                },
            ),
            ev(
                0.6,
                None,
                EventKind::RunCompleted {
                    realizations: 50,
                    t_comp_seconds: 0.6,
                    messages: 0,
                    bytes: 0,
                },
            ),
        ];
        let s = MonitorSummary::from_events(&events);
        assert_eq!(s.messages_received, 0);
        assert_eq!(s.ranks.len(), 1);
        assert_eq!(s.ranks[&0].messages_sent, 0);
        assert_eq!(
            s.collector_fraction(CollectorActivity::Computing),
            Some(1.0)
        );
        let table = s.render_table();
        assert!(table.contains("messages received 0"));
        assert!(table.contains("computing 100.0%"));
    }

    /// `emit_at` producers (virtual time, merged per-rank streams) may
    /// deliver events out of timestamp order; the fold must be
    /// order-tolerant — same summary as the sorted trace.
    #[test]
    fn non_monotonic_time_folds_like_sorted() {
        let make = |completed, t| {
            ev(
                t,
                Some(1),
                EventKind::Realizations {
                    completed,
                    compute_seconds: t,
                },
            )
        };
        let shuffled = vec![
            make(60, 0.9),
            ev(
                0.2,
                Some(0),
                EventKind::AveragingPass {
                    volume: 60,
                    duration_seconds: 0.01,
                    eps_max: Some(0.2),
                    max_snapshot_age_seconds: Some(0.1),
                },
            ),
            make(40, 0.5),
            ev(0.1, Some(0), EventKind::QueueHighWater { depth: 2 }),
            make(10, 0.1),
        ];
        let mut sorted = shuffled.clone();
        sorted.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        let a = MonitorSummary::from_events(&shuffled);
        let b = MonitorSummary::from_events(&sorted);
        assert_eq!(a, b);
        assert_eq!(a.ranks[&1].realizations, 60);
        assert_eq!(a.ranks[&1].compute_seconds, 0.9);
        let _ = a.render_table();
    }

    /// The full multi-host story: a trace whose per-rank streams were
    /// merged from skewed clocks (worker events arrive late, early, and
    /// interleaved across every kind the TCP backend emits) must fold
    /// to the identical summary under every delivery order.
    #[test]
    fn skewed_multi_host_trace_folds_order_independently() {
        use crate::event::SpanPhase;
        // Rank 1's clock runs 5 s ahead, rank 2's 3 s behind: the
        // merged timeline is wildly non-monotonic even though each
        // rank's own stream is ordered.
        let mut events = vec![
            ev(
                0.0,
                None,
                EventKind::RunStarted {
                    mode: RunMode::Threads,
                    processors: 3,
                    max_sample_volume: 300,
                    seqnum: Some(1),
                    nrow: Some(1),
                    ncol: Some(1),
                    transport: Some(RunTransport::Tcp),
                },
            ),
            ev(
                0.1,
                Some(0),
                EventKind::WorkerJoined {
                    worker: 1,
                    addr: None,
                },
            ),
            ev(
                0.2,
                Some(0),
                EventKind::WorkerJoined {
                    worker: 2,
                    addr: None,
                },
            ),
        ];
        for (rank, skew) in [(1usize, 5.0f64), (2, -3.0)] {
            let span = (rank as u64 + 1) << 40;
            for step in 0..4u64 {
                let t = 0.3 + step as f64 * 0.2 + skew;
                events.push(ev(
                    t,
                    Some(rank),
                    EventKind::SpanStarted {
                        span: span + step,
                        parent: None,
                        phase: SpanPhase::RealizationBatch,
                    },
                ));
                events.push(ev(
                    t + 0.1,
                    Some(rank),
                    EventKind::Realizations {
                        completed: (step + 1) * 25,
                        compute_seconds: (step + 1) as f64 * 0.1,
                    },
                ));
                events.push(ev(
                    t + 0.15,
                    Some(rank),
                    EventKind::MessageSent {
                        dest: 0,
                        tag: 1,
                        bytes: 48,
                    },
                ));
                events.push(ev(
                    t + 0.18,
                    Some(rank),
                    EventKind::SpanEnded {
                        span: span + step,
                        phase: SpanPhase::RealizationBatch,
                    },
                ));
                events.push(ev(
                    0.35 + step as f64 * 0.2,
                    Some(0),
                    EventKind::MessageReceived {
                        source: rank,
                        tag: 1,
                        bytes: 48,
                        queue_depth: step,
                    },
                ));
            }
            events.push(ev(
                2.0,
                Some(0),
                EventKind::WireStats {
                    link: rank,
                    frames_in: 40,
                    bytes_in: 3200,
                    frames_out: 2,
                    bytes_out: 64,
                    dials: u64::from(rank == 1),
                    dedup_dropped: u64::from(rank == 2),
                    events_dropped: 0,
                },
            ));
            events.push(ev(2.1, Some(0), EventKind::WorkerLeft { worker: rank }));
        }
        events.push(ev(
            2.2,
            Some(0),
            EventKind::AveragingPass {
                volume: 200,
                duration_seconds: 0.02,
                eps_max: Some(0.01),
                max_snapshot_age_seconds: Some(0.4),
            },
        ));
        events.push(ev(
            2.3,
            None,
            EventKind::RunCompleted {
                realizations: 200,
                t_comp_seconds: 2.3,
                messages: 8,
                bytes: 384,
            },
        ));

        let reference = MonitorSummary::from_events(&events);
        // Deterministic pseudo-shuffles: rotate and stride the trace.
        let n = events.len();
        for seed in 1..6 {
            let mut shuffled = Vec::with_capacity(n);
            let stride = 1 + (seed * 5) % n;
            let mut i = seed % n;
            for _ in 0..n {
                shuffled.push(events[i].clone());
                i = (i + stride) % n;
            }
            // Strides coprime with n visit every event exactly once;
            // skip degenerate strides that don't.
            let mut check: Vec<_> = shuffled.iter().map(|e| e.time_s.to_bits()).collect();
            let mut orig: Vec<_> = events.iter().map(|e| e.time_s.to_bits()).collect();
            check.sort_unstable();
            orig.sort_unstable();
            if check != orig {
                continue;
            }
            assert_eq!(
                MonitorSummary::from_events(&shuffled),
                reference,
                "fold differed under shuffle seed {seed}"
            );
        }
        let mut sorted = events.clone();
        sorted.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        assert_eq!(MonitorSummary::from_events(&sorted), reference);

        // Sanity on the folded values themselves.
        assert_eq!(reference.ranks[&1].realizations, 100);
        assert_eq!(reference.ranks[&2].realizations, 100);
        assert_eq!(reference.spans_closed, 8);
        let batch = reference.span_seconds["realization_batch"];
        assert!((batch - 8.0 * 0.18).abs() < 1e-9, "batch seconds {batch}");
        assert_eq!(reference.wire_links, 2);
        assert_eq!(reference.wire_frames_in, 80);
        assert_eq!(reference.reconnect_dials, 1);
        assert_eq!(reference.dedup_dropped_frames, 1);
        let table = reference.render_table();
        assert!(table.contains("wire (2 link ends)"));
        assert!(table.contains("spans closed 8"));
        assert!(table.contains("dedup-dropped 1"));
    }

    #[test]
    fn forwarded_drops_render_a_warning() {
        let events = [ev(
            1.0,
            Some(0),
            EventKind::WireStats {
                link: 1,
                frames_in: 5,
                bytes_in: 400,
                frames_out: 1,
                bytes_out: 32,
                dials: 0,
                dedup_dropped: 0,
                events_dropped: 4,
            },
        )];
        let s = MonitorSummary::from_events(&events);
        assert_eq!(s.forwarded_dropped_events, 4);
        let table = s.render_table();
        assert!(table.contains("WARNING: 4 forwarded event(s) dropped"));
    }

    #[test]
    fn metrics_plane_events_fold_and_render() {
        let events = vec![
            ev(
                0.5,
                Some(0),
                EventKind::MetricsSnapshot {
                    functional: 0,
                    n: 40,
                    mean: Some(0.5),
                    err: Some(0.1),
                },
            ),
            ev(
                0.9,
                Some(0),
                EventKind::TargetPrecisionReached {
                    n: 80,
                    eps_max: 0.04,
                    target: 0.05,
                },
            ),
        ];
        let s = MonitorSummary::from_events(&events);
        assert_eq!(s.metrics_snapshots, 1);
        assert_eq!(s.target_precision, Some((80, 0.04, 0.05)));
        let table = s.render_table();
        assert!(table.contains("target precision reached at n 80"));
    }

    #[test]
    fn dropped_events_render_a_warning() {
        let mut s = MonitorSummary::from_events(&[]);
        s.dropped_events = 3;
        let table = s.render_table();
        assert!(table.contains("WARNING: 3 trace line(s) dropped"));
    }
}
