//! Error-bar convergence tracking: the `(n, mean, err)` trajectory of
//! every estimated functional, sampled at each subtotal merge.
//!
//! The PARMONC workflow's headline quantity — the sample mean with its
//! stochastic error bar — is recomputed by the collector at every
//! averaging pass, but the event plane only recorded the scalar
//! `eps_max`. [`ConvergenceTracker`] observes the full per-functional
//! picture *after* the estimate is computed, records it, and emits the
//! schema-validated `metrics_snapshot` / `target_precision_reached`
//! event pair. It is strictly read-only with respect to estimation:
//! the caller hands it already-computed values, so final means and
//! error bars are bit-identical with the tracker attached or not.

use crate::event::EventKind;
use crate::monitor::Monitor;

/// One point of a functional's error-bar trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Total sample volume at the observation.
    pub n: u64,
    /// The sample mean.
    pub mean: f64,
    /// The absolute stochastic error bar (may be non-finite while
    /// `n < 2`).
    pub err: f64,
}

/// Records convergence trajectories and emits the metrics-plane
/// events. See the module docs for the no-perturbation contract.
///
/// # Examples
///
/// ```
/// use parmonc_obs::{ConvergenceTracker, Monitor};
///
/// let mut tracker = ConvergenceTracker::with_target(Some(0.05));
/// let monitor = Monitor::disabled();
/// tracker.observe(&monitor, Some(0), 100, &[0.5], &[0.01], 0.01);
/// assert!(tracker.reached());
/// assert_eq!(tracker.trajectories()[0].len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    target: Option<f64>,
    reached: bool,
    max_tracked: usize,
    trajectories: Vec<Vec<TrajectoryPoint>>,
}

impl Default for ConvergenceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ConvergenceTracker {
    /// How many functionals are tracked in full by default; functionals
    /// beyond this emit no per-functional snapshots (runs estimating
    /// huge realization matrices would otherwise flood the trace).
    pub const DEFAULT_MAX_TRACKED: usize = 8;

    /// A tracker with no precision target: it records trajectories and
    /// emits `metrics_snapshot` events, but never declares the target
    /// reached.
    #[must_use]
    pub fn new() -> Self {
        Self::with_target(None)
    }

    /// A tracker declaring `target_precision_reached` the first time
    /// the observed `eps_max` drops to `target` or below (with at
    /// least two samples, matching the runner's stop rule).
    #[must_use]
    pub fn with_target(target: Option<f64>) -> Self {
        Self {
            target,
            reached: false,
            max_tracked: Self::DEFAULT_MAX_TRACKED,
            trajectories: Vec::new(),
        }
    }

    /// Overrides the per-functional tracking cap.
    #[must_use]
    pub fn max_tracked(mut self, cap: usize) -> Self {
        self.max_tracked = cap;
        self
    }

    /// Records one observation: the estimate after a subtotal merge.
    ///
    /// `means` and `errs` are the already-computed per-functional
    /// sample means and absolute error bars (row-major); `eps_max` is
    /// the largest error bar. Emits one `metrics_snapshot` per tracked
    /// functional and, at most once, `target_precision_reached`.
    pub fn observe(
        &mut self,
        monitor: &Monitor,
        rank: Option<usize>,
        n: u64,
        means: &[f64],
        errs: &[f64],
        eps_max: f64,
    ) {
        self.observe_impl(n, means, errs, eps_max, |kind| monitor.emit(rank, kind));
    }

    /// Like [`Self::observe`] but stamping the emitted events with an
    /// explicit (virtual) timestamp — for discrete-event producers.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_at(
        &mut self,
        monitor: &Monitor,
        time_s: f64,
        rank: Option<usize>,
        n: u64,
        means: &[f64],
        errs: &[f64],
        eps_max: f64,
    ) {
        self.observe_impl(n, means, errs, eps_max, |kind| {
            monitor.emit_at(time_s, rank, kind);
        });
    }

    fn observe_impl(
        &mut self,
        n: u64,
        means: &[f64],
        errs: &[f64],
        eps_max: f64,
        mut emit: impl FnMut(EventKind),
    ) {
        let tracked = means.len().min(self.max_tracked);
        if self.trajectories.len() < tracked {
            self.trajectories.resize(tracked, Vec::new());
        }
        for (j, &mean) in means.iter().enumerate().take(tracked) {
            let err = errs.get(j).copied().unwrap_or(f64::INFINITY);
            self.trajectories[j].push(TrajectoryPoint { n, mean, err });
            emit(EventKind::MetricsSnapshot {
                functional: j as u64,
                n,
                mean: Some(mean),
                err: Some(err),
            });
        }
        if let Some(target) = self.target {
            if !self.reached && n >= 2 && eps_max <= target {
                self.reached = true;
                emit(EventKind::TargetPrecisionReached { n, eps_max, target });
            }
        }
    }

    /// Whether the precision target has been declared reached.
    #[must_use]
    pub fn reached(&self) -> bool {
        self.reached
    }

    /// The recorded trajectories, one `Vec` per tracked functional.
    #[must_use]
    pub fn trajectories(&self) -> &[Vec<TrajectoryPoint>] {
        &self.trajectories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MemorySink;
    use std::sync::Arc;

    #[test]
    fn emits_snapshots_and_target_event_once() {
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let mut tracker = ConvergenceTracker::with_target(Some(0.05));

        tracker.observe(&monitor, Some(0), 10, &[0.5, 0.6], &[0.2, 0.3], 0.3);
        assert!(!tracker.reached());
        tracker.observe(&monitor, Some(0), 100, &[0.51, 0.59], &[0.04, 0.05], 0.05);
        assert!(tracker.reached());
        // Already reached: no second target event.
        tracker.observe(&monitor, Some(0), 200, &[0.5, 0.6], &[0.01, 0.02], 0.02);

        let events = sink.snapshot();
        let snapshots = events
            .iter()
            .filter(|e| e.kind.name() == "metrics_snapshot")
            .count();
        let targets = events
            .iter()
            .filter(|e| e.kind.name() == "target_precision_reached")
            .count();
        assert_eq!(snapshots, 6, "2 functionals x 3 observations");
        assert_eq!(targets, 1);
        assert_eq!(tracker.trajectories().len(), 2);
        assert_eq!(tracker.trajectories()[0].len(), 3);
        assert_eq!(
            tracker.trajectories()[1][1],
            TrajectoryPoint {
                n: 100,
                mean: 0.59,
                err: 0.05,
            }
        );
    }

    #[test]
    fn no_target_never_declares() {
        let mut tracker = ConvergenceTracker::new();
        let monitor = Monitor::disabled();
        tracker.observe(&monitor, None, 1000, &[0.5], &[0.0001], 0.0001);
        assert!(!tracker.reached());
    }

    #[test]
    fn needs_two_samples_before_declaring() {
        let mut tracker = ConvergenceTracker::with_target(Some(1.0));
        let monitor = Monitor::disabled();
        tracker.observe(&monitor, None, 1, &[0.5], &[0.0], 0.0);
        assert!(!tracker.reached(), "n = 1 cannot satisfy the stop rule");
        tracker.observe(&monitor, None, 2, &[0.5], &[0.0], 0.0);
        assert!(tracker.reached());
    }

    #[test]
    fn tracking_cap_limits_functionals() {
        let mut tracker = ConvergenceTracker::new().max_tracked(2);
        let monitor = Monitor::disabled();
        let means = [0.1, 0.2, 0.3, 0.4];
        let errs = [0.01, 0.02, 0.03, 0.04];
        tracker.observe(&monitor, None, 50, &means, &errs, 0.04);
        assert_eq!(tracker.trajectories().len(), 2);
    }
}
