//! The [`Monitor`] handle and the event sinks behind it.
//!
//! A `Monitor` is what instrumented code holds: cloning is an
//! `Option<Arc>` copy, and the disabled monitor ([`Monitor::disabled`])
//! reduces every emission to one `is_some` branch — the "zero-cost
//! no-op default" the observability layer promises. Enabled monitors
//! stamp events with wall time since the monitor's creation and fan
//! them out to every attached [`EventSink`].

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Receives events from a [`Monitor`]. Implementations must be cheap
/// and non-blocking-ish: emitters call [`EventSink::record`] from hot
/// loops (though only at exchange granularity).
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (called at end of run).
    fn flush(&self) {}

    /// How many events this sink has lost so far (failed writes, full
    /// disks). The default of 0 suits in-memory sinks that cannot lose
    /// events.
    fn dropped_events(&self) -> u64 {
        0
    }
}

impl<S: EventSink + ?Sized> EventSink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }

    fn dropped_events(&self) -> u64 {
        (**self).dropped_events()
    }
}

struct Inner {
    epoch: Instant,
    /// A constant added to every clock reading — 0 in production.
    /// Tests and the CI skew job use it to give a process a
    /// deterministically wrong clock, so the cross-host alignment
    /// plane has a known offset to estimate and cancel.
    skew_s: f64,
    sinks: Vec<Box<dyn EventSink>>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("epoch", &self.epoch)
            .field("skew_s", &self.skew_s)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The monitor handle instrumented code emits through.
///
/// # Examples
///
/// ```
/// use parmonc_obs::{EventKind, MemorySink, Monitor};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
/// monitor.emit(Some(0), EventKind::QueueHighWater { depth: 3 });
/// assert_eq!(sink.snapshot().len(), 1);
///
/// // The disabled monitor drops everything at the cost of one branch.
/// let off = Monitor::disabled();
/// assert!(!off.is_enabled());
/// off.emit(Some(0), EventKind::QueueHighWater { depth: 9 });
/// ```
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    inner: Option<Arc<Inner>>,
}

impl Monitor {
    /// The no-op monitor: every emission is a single branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A monitor fanning out to `sinks`, stamping events with seconds
    /// since this call.
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        Self::new_skewed(sinks, 0.0)
    }

    /// A monitor whose clock reads `skew_s` seconds ahead of reality —
    /// the deterministic skew-injection hook for clock-alignment tests.
    /// Production callers use [`Monitor::new`] (skew 0).
    #[must_use]
    pub fn new_skewed(sinks: Vec<Box<dyn EventSink>>, skew_s: f64) -> Self {
        Self::new_skewed_from(Instant::now(), sinks, skew_s)
    }

    /// A skewed monitor whose clock starts at `epoch` instead of the
    /// moment of this call. Lets a transport take clock samples
    /// *before* its monitor exists — the TCP join handshake exchanges
    /// timestamps, then builds the forwarding monitor on the very same
    /// epoch so handshake samples and event stamps share one clock.
    #[must_use]
    pub fn new_skewed_from(epoch: Instant, sinks: Vec<Box<dyn EventSink>>, skew_s: f64) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch,
                skew_s,
                sinks,
            })),
        }
    }

    /// Whether events are actually recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the monitor was created (0 when disabled),
    /// including any injected skew — the same clock event timestamps
    /// and handshake clock probes read.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.epoch.elapsed().as_secs_f64() + i.skew_s)
    }

    /// Emits an event stamped with the current elapsed time.
    pub fn emit(&self, rank: Option<usize>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event {
                time_s: inner.epoch.elapsed().as_secs_f64() + inner.skew_s,
                rank,
                raw_time_s: None,
                kind,
            };
            for sink in &inner.sinks {
                sink.record(&event);
            }
        }
    }

    /// Emits an event with an explicit timestamp — used by virtual-time
    /// producers (the cluster simulator), which have no wall clock.
    pub fn emit_at(&self, time_s: f64, rank: Option<usize>, kind: EventKind) {
        self.emit_aligned(time_s, None, rank, kind);
    }

    /// Emits an event with an explicit *corrected* timestamp plus the
    /// emitter's preserved uncorrected one — the re-emission path for
    /// events forwarded over a clock-aligned link.
    pub fn emit_aligned(
        &self,
        time_s: f64,
        raw_time_s: Option<f64>,
        rank: Option<usize>,
        kind: EventKind,
    ) {
        if let Some(inner) = &self.inner {
            let event = Event {
                time_s,
                rank,
                raw_time_s,
                kind,
            };
            for sink in &inner.sinks {
                sink.record(&event);
            }
        }
    }

    /// Flushes every sink and returns the total number of events the
    /// sinks have dropped (failed writes, full disks) — 0 for a clean
    /// trace. Callers that surface trace health (the runner's summary)
    /// use the return value; fire-and-forget callers may ignore it.
    pub fn flush(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let mut dropped = 0;
        for sink in &inner.sinks {
            sink.flush();
            dropped += sink.dropped_events();
        }
        dropped
    }

    /// The total number of events the attached sinks have dropped so
    /// far, without forcing a flush.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.sinks.iter().map(|s| s.dropped_events()).sum()
        })
    }
}

/// The buffered file plus the count of lines accepted since the last
/// successful flush — the lines still at risk if that flush fails.
struct JsonlWriter {
    buf: BufWriter<File>,
    pending: u64,
}

impl JsonlWriter {
    /// Flushes the buffer, converting a failure into the number of
    /// buffered lines lost.
    fn flush_counting(&mut self) -> u64 {
        let lost = match self.buf.flush() {
            Ok(()) => 0,
            Err(_) => self.pending,
        };
        self.pending = 0;
        lost
    }
}

/// Appends events as JSONL to a file — the sink behind
/// `parmonc_data/monitor/run_metrics.jsonl`.
///
/// Write failures (full disk, revoked mount) do not panic the hot
/// path; instead every event that could not be durably written is
/// counted, and [`Monitor::flush`] surfaces the total so a truncated
/// trace never masquerades as a clean one.
pub struct JsonlSink {
    out: Mutex<JsonlWriter>,
    dropped: AtomicU64,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the metrics file, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(Self {
            out: Mutex::new(JsonlWriter {
                buf: BufWriter::new(File::create(path)?),
                pending: 0,
            }),
            dropped: AtomicU64::new(0),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let write = out
            .buf
            .write_all(line.as_bytes())
            .and_then(|()| out.buf.write_all(b"\n"));
        match write {
            Ok(()) => out.pending += 1,
            // The write failed while spilling the buffer: this event is
            // gone (a partial line at worst, which the strict validator
            // flags).
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn flush(&self) {
        let lost = self
            .out
            .lock()
            .expect("jsonl sink poisoned")
            .flush_counting();
        if lost > 0 {
            self.dropped.fetch_add(lost, Ordering::Relaxed);
        }
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush_counting();
        }
    }
}

/// Collects events in memory — for tests and for end-of-run summaries.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_monitor_is_inert() {
        let m = Monitor::disabled();
        assert!(!m.is_enabled());
        m.emit(None, EventKind::QueueHighWater { depth: 1 });
        m.emit_at(5.0, Some(3), EventKind::QueueHighWater { depth: 2 });
        assert_eq!(m.flush(), 0);
        assert_eq!(m.dropped_events(), 0);
        assert_eq!(m.elapsed_s(), 0.0);
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        for depth in 1..=5u64 {
            m.emit(Some(0), EventKind::QueueHighWater { depth });
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e.kind,
                EventKind::QueueHighWater {
                    depth: i as u64 + 1
                }
            );
            assert_eq!(e.rank, Some(0));
        }
        // Wall timestamps are monotone.
        for pair in events.windows(2) {
            assert!(pair[1].time_s >= pair[0].time_s);
        }
    }

    #[test]
    fn emit_at_uses_explicit_time() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        m.emit_at(42.5, None, EventKind::QueueHighWater { depth: 1 });
        assert_eq!(sink.snapshot()[0].time_s, 42.5);
        assert_eq!(sink.snapshot()[0].raw_time_s, None);
    }

    #[test]
    fn emit_aligned_preserves_the_raw_timestamp() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        m.emit_aligned(
            1.5,
            Some(6.5),
            Some(2),
            EventKind::QueueHighWater { depth: 1 },
        );
        let events = sink.snapshot();
        assert_eq!(events[0].time_s, 1.5);
        assert_eq!(events[0].raw_time_s, Some(6.5));
    }

    #[test]
    fn skewed_monitor_reads_ahead_by_the_skew() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new_skewed(vec![Box::new(Arc::clone(&sink))], 100.0);
        m.emit(Some(0), EventKind::QueueHighWater { depth: 1 });
        let t = sink.snapshot()[0].time_s;
        assert!((100.0..101.0).contains(&t), "skewed stamp {t}");
        assert!(m.elapsed_s() >= 100.0);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!("parmonc-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("monitor/run_metrics.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let m = Monitor::new(vec![Box::new(sink)]);
        m.emit(Some(1), EventKind::QueueHighWater { depth: 7 });
        assert_eq!(m.flush(), 0, "a healthy trace drops nothing");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kind\":\"queue_high_water\""));
        assert!(text.contains("\"depth\":7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A full disk must be visible as a dropped-event count, not a
    /// silently truncated trace. `/dev/full` accepts opens but fails
    /// every write with `ENOSPC`.
    #[test]
    #[cfg(target_os = "linux")]
    fn full_disk_surfaces_dropped_events() {
        if !Path::new("/dev/full").exists() {
            return;
        }
        let sink = JsonlSink::create("/dev/full").unwrap();
        let m = Monitor::new(vec![Box::new(sink)]);
        for depth in 0..5 {
            m.emit(Some(0), EventKind::QueueHighWater { depth });
        }
        // Whether events died in `record` (buffer spill) or at flush,
        // every one of the 5 must be accounted for.
        assert_eq!(m.flush(), 5);
        assert_eq!(m.dropped_events(), 5);
    }

    #[test]
    fn clone_shares_the_epoch_and_sinks() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let m2 = m.clone();
        m2.emit(None, EventKind::QueueHighWater { depth: 1 });
        m.emit(None, EventKind::QueueHighWater { depth: 2 });
        assert_eq!(sink.len(), 2);
    }
}
