//! The [`Monitor`] handle and the event sinks behind it.
//!
//! A `Monitor` is what instrumented code holds: cloning is an
//! `Option<Arc>` copy, and the disabled monitor ([`Monitor::disabled`])
//! reduces every emission to one `is_some` branch — the "zero-cost
//! no-op default" the observability layer promises. Enabled monitors
//! stamp events with wall time since the monitor's creation and fan
//! them out to every attached [`EventSink`].

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Receives events from a [`Monitor`]. Implementations must be cheap
/// and non-blocking-ish: emitters call [`EventSink::record`] from hot
/// loops (though only at exchange granularity).
pub trait EventSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output (called at end of run).
    fn flush(&self) {}
}

impl<S: EventSink + ?Sized> EventSink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

struct Inner {
    epoch: Instant,
    sinks: Vec<Box<dyn EventSink>>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner")
            .field("epoch", &self.epoch)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The monitor handle instrumented code emits through.
///
/// # Examples
///
/// ```
/// use parmonc_obs::{EventKind, MemorySink, Monitor};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
/// monitor.emit(Some(0), EventKind::QueueHighWater { depth: 3 });
/// assert_eq!(sink.snapshot().len(), 1);
///
/// // The disabled monitor drops everything at the cost of one branch.
/// let off = Monitor::disabled();
/// assert!(!off.is_enabled());
/// off.emit(Some(0), EventKind::QueueHighWater { depth: 9 });
/// ```
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    inner: Option<Arc<Inner>>,
}

impl Monitor {
    /// The no-op monitor: every emission is a single branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A monitor fanning out to `sinks`, stamping events with seconds
    /// since this call.
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sinks,
            })),
        }
    }

    /// Whether events are actually recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the monitor was created (0 when disabled).
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.epoch.elapsed().as_secs_f64())
    }

    /// Emits an event stamped with the current elapsed time.
    pub fn emit(&self, rank: Option<usize>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event {
                time_s: inner.epoch.elapsed().as_secs_f64(),
                rank,
                kind,
            };
            for sink in &inner.sinks {
                sink.record(&event);
            }
        }
    }

    /// Emits an event with an explicit timestamp — used by virtual-time
    /// producers (the cluster simulator), which have no wall clock.
    pub fn emit_at(&self, time_s: f64, rank: Option<usize>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event { time_s, rank, kind };
            for sink in &inner.sinks {
                sink.record(&event);
            }
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }
}

/// Appends events as JSONL to a file — the sink behind
/// `parmonc_data/monitor/run_metrics.jsonl`.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the metrics file, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Collects events in memory — for tests and for end-of-run summaries.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_monitor_is_inert() {
        let m = Monitor::disabled();
        assert!(!m.is_enabled());
        m.emit(None, EventKind::QueueHighWater { depth: 1 });
        m.emit_at(5.0, Some(3), EventKind::QueueHighWater { depth: 2 });
        m.flush();
        assert_eq!(m.elapsed_s(), 0.0);
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        for depth in 1..=5u64 {
            m.emit(Some(0), EventKind::QueueHighWater { depth });
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e.kind,
                EventKind::QueueHighWater {
                    depth: i as u64 + 1
                }
            );
            assert_eq!(e.rank, Some(0));
        }
        // Wall timestamps are monotone.
        for pair in events.windows(2) {
            assert!(pair[1].time_s >= pair[0].time_s);
        }
    }

    #[test]
    fn emit_at_uses_explicit_time() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        m.emit_at(42.5, None, EventKind::QueueHighWater { depth: 1 });
        assert_eq!(sink.snapshot()[0].time_s, 42.5);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!("parmonc-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("monitor/run_metrics.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let m = Monitor::new(vec![Box::new(sink)]);
        m.emit(Some(1), EventKind::QueueHighWater { depth: 7 });
        m.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kind\":\"queue_high_water\""));
        assert!(text.contains("\"depth\":7"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clone_shares_the_epoch_and_sinks() {
        let sink = Arc::new(MemorySink::new());
        let m = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let m2 = m.clone();
        m2.emit(None, EventKind::QueueHighWater { depth: 1 });
        m.emit(None, EventKind::QueueHighWater { depth: 2 });
        assert_eq!(sink.len(), 2);
    }
}
