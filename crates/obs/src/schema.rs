//! Schema validation for `run_metrics.jsonl` lines.
//!
//! [`validate_line`] parses one emitted line with a tiny flat-JSON
//! reader (the wire format is deliberately flat: string, number and
//! `null` values only) and checks it against the documented schema —
//! version, kind discriminator, required fields, field types, and no
//! unknown fields. Tests use it to prove that what the runner and the
//! simulator write is exactly what `docs/observability.md` promises.

use crate::event::{CollectorActivity, Event, EventKind, SCHEMA_VERSION};

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Null,
}

/// Parses a single flat JSON object (`{"key":value,...}`) with string,
/// number and `null` values. Returns key/value pairs in order.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let err = |msg: &str, at: usize| format!("{msg} at byte {at} in {s:?}");

    let mut pairs = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(err("expected '{'", other.map_or(0, |(i, _)| i))),
    }
    // Empty object.
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
    } else {
        loop {
            // Key.
            let (ki, kc) = chars.next().ok_or_else(|| err("unterminated object", 0))?;
            if kc != '"' {
                return Err(err("expected '\"' starting key", ki));
            }
            let mut key = String::new();
            loop {
                let (i, c) = chars.next().ok_or_else(|| err("unterminated key", ki))?;
                match c {
                    '"' => break,
                    '\\' => {
                        let (_, esc) = chars.next().ok_or_else(|| err("bad escape", i))?;
                        key.push(esc);
                    }
                    _ => key.push(c),
                }
            }
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(err("expected ':'", other.map_or(0, |(i, _)| i))),
            }
            // Value.
            let (vi, vc) = chars.next().ok_or_else(|| err("missing value", 0))?;
            let value = match vc {
                '"' => {
                    let mut text = String::new();
                    loop {
                        let (i, c) = chars.next().ok_or_else(|| err("unterminated string", vi))?;
                        match c {
                            '"' => break,
                            '\\' => {
                                let (_, esc) = chars.next().ok_or_else(|| err("bad escape", i))?;
                                text.push(esc);
                            }
                            _ => text.push(c),
                        }
                    }
                    Value::Str(text)
                }
                'n' => {
                    for expected in ['u', 'l', 'l'] {
                        match chars.next() {
                            Some((_, c)) if c == expected => {}
                            _ => return Err(err("bad literal", vi)),
                        }
                    }
                    Value::Null
                }
                c if c == '-' || c.is_ascii_digit() => {
                    let mut text = String::from(c);
                    while let Some(&(_, c)) = chars.peek() {
                        if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-') {
                            text.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    Value::Num(text.parse::<f64>().map_err(|_| err("bad number", vi))?)
                }
                _ => return Err(err("unsupported value (schema is flat)", vi)),
            };
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} in {s:?}"));
            }
            pairs.push((key, value));
            match chars.next() {
                Some((_, ',')) => {}
                Some((_, '}')) => break,
                other => return Err(err("expected ',' or '}'", other.map_or(0, |(i, _)| i))),
            }
        }
    }
    if let Some((i, _)) = chars.next() {
        return Err(err("trailing characters", i));
    }
    Ok(pairs)
}

/// Expected type of one schema field.
#[derive(Debug, Clone, Copy)]
enum FieldType {
    /// A non-negative integer-valued number.
    UInt,
    /// Any number, or `null` (the encoder writes `null` for non-finite
    /// values).
    Num,
    /// A string drawn from a fixed vocabulary (empty slice = any).
    Enum(&'static [&'static str]),
}

fn check_type(key: &str, value: &Value, ty: FieldType) -> Result<(), String> {
    match (ty, value) {
        (FieldType::UInt, Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(()),
        (FieldType::UInt, _) => Err(format!("field {key:?} must be a non-negative integer")),
        (FieldType::Num, Value::Num(_) | Value::Null) => Ok(()),
        (FieldType::Num, Value::Str(_)) => Err(format!("field {key:?} must be a number or null")),
        (FieldType::Enum(vocab), Value::Str(s)) => {
            if vocab.is_empty() || vocab.contains(&s.as_str()) {
                Ok(())
            } else {
                Err(format!("field {key:?} has unknown value {s:?}"))
            }
        }
        (FieldType::Enum(_), _) => Err(format!("field {key:?} must be a string")),
    }
}

/// A list of (field name, expected type) pairs.
type FieldSpec = &'static [(&'static str, FieldType)];

/// Required and optional kind-specific fields for one event kind.
fn kind_fields(kind: &str) -> Option<(FieldSpec, FieldSpec)> {
    use FieldType::{Enum, Num, UInt};
    const MODES: &[&str] = &["threads", "simcluster"];
    const TRANSPORTS: &[&str] = &["threads", "processes", "tcp"];
    const ACTIVITIES: &[&str] = &["computing", "receiving", "saving", "waiting"];
    const PHASES: &[&str] = &[
        "stream_position",
        "realization_batch",
        "subtotal_send",
        "collector_merge",
        "checkpoint",
        "reconnect",
    ];
    const FAULTS: &[&str] = &[
        "rank_crash",
        "message_drop",
        "message_duplicate",
        "message_delay",
        "torn_write",
        "bit_flip",
        "io_interrupt",
        "net_sever",
        "net_stall",
        "net_tear",
        "net_partition",
    ];
    Some(match kind {
        "run_started" => (
            &[
                ("mode", Enum(MODES)),
                ("processors", UInt),
                ("max_sample_volume", UInt),
            ][..],
            &[
                ("seqnum", UInt),
                ("nrow", UInt),
                ("ncol", UInt),
                ("transport", Enum(TRANSPORTS)),
            ][..],
        ),
        "realizations" => (
            &[("completed", UInt), ("compute_seconds", Num)][..],
            &[][..],
        ),
        "message_sent" => (
            &[("dest", UInt), ("tag", UInt), ("bytes", UInt)][..],
            &[][..],
        ),
        "message_received" => (
            &[
                ("source", UInt),
                ("tag", UInt),
                ("bytes", UInt),
                ("queue_depth", UInt),
            ][..],
            &[][..],
        ),
        "queue_high_water" => (&[("depth", UInt)][..], &[][..]),
        "averaging_pass" => (
            &[("volume", UInt), ("duration_seconds", Num)][..],
            &[("eps_max", Num), ("max_snapshot_age_seconds", Num)][..],
        ),
        "save_point" => (&[("volume", UInt), ("duration_seconds", Num)][..], &[][..]),
        "collector_segment" => (
            &[
                ("activity", Enum(ACTIVITIES)),
                ("start_s", Num),
                ("end_s", Num),
            ][..],
            &[][..],
        ),
        "run_completed" => (
            &[
                ("realizations", UInt),
                ("t_comp_seconds", Num),
                ("messages", UInt),
                ("bytes", UInt),
            ][..],
            &[][..],
        ),
        "fault_injected" => (&[("fault", Enum(FAULTS))][..], &[("detail", UInt)][..]),
        "worker_lost" => (
            &[("worker", UInt), ("received_realizations", UInt)][..],
            &[][..],
        ),
        "work_reassigned" => (
            &[
                ("from_worker", UInt),
                ("to_worker", UInt),
                ("realizations", UInt),
            ][..],
            &[][..],
        ),
        "checkpoint_recovered" => (&[("volume", UInt)][..], &[][..]),
        "metrics_snapshot" => (
            &[("functional", UInt), ("n", UInt)][..],
            &[("mean", Num), ("err", Num)][..],
        ),
        "target_precision_reached" => (
            &[("n", UInt), ("eps_max", Num), ("target", Num)][..],
            &[][..],
        ),
        "worker_joined" => (&[("worker", UInt)][..], &[("addr", Enum(&[]))][..]),
        "worker_left" => (&[("worker", UInt)][..], &[][..]),
        "worker_reconnected" => (&[("worker", UInt)][..], &[][..]),
        "collector_resumed" => (&[("epoch", Enum(&[])), ("leases", UInt)][..], &[][..]),
        "torn_frame" => (&[("source", UInt)][..], &[][..]),
        "span_started" => (
            &[("span", UInt), ("phase", Enum(PHASES))][..],
            &[("parent", UInt)][..],
        ),
        "span_ended" => (&[("span", UInt), ("phase", Enum(PHASES))][..], &[][..]),
        "wire_stats" => (
            &[
                ("link", UInt),
                ("frames_in", UInt),
                ("bytes_in", UInt),
                ("frames_out", UInt),
                ("bytes_out", UInt),
                ("dials", UInt),
                ("dedup_dropped", UInt),
                ("events_dropped", UInt),
            ][..],
            &[][..],
        ),
        _ => return None,
    })
}

/// Validates one `run_metrics.jsonl` line against schema version
/// [`SCHEMA_VERSION`], returning the event kind name on success.
///
/// # Errors
///
/// Describes the first problem found: malformed JSON, wrong version,
/// unknown kind, missing/ill-typed field, or an unknown field.
///
/// # Examples
///
/// ```
/// use parmonc_obs::schema::validate_line;
///
/// let kind = validate_line(r#"{"v":1,"kind":"queue_high_water","time_s":0.5,"rank":0,"depth":3}"#)
///     .unwrap();
/// assert_eq!(kind, "queue_high_water");
/// assert!(validate_line(r#"{"v":1,"kind":"queue_high_water","time_s":0.5}"#).is_err());
/// ```
pub fn validate_line(line: &str) -> Result<&'static str, String> {
    let pairs = parse_flat_object(line)?;
    let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);

    match get("v") {
        Some(Value::Num(n)) if *n == SCHEMA_VERSION as f64 => {}
        Some(_) => return Err(format!("\"v\" must be {SCHEMA_VERSION}")),
        None => return Err("missing \"v\"".into()),
    }
    let kind = match get("kind") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("missing or non-string \"kind\"".into()),
    };
    let canonical = EventKind::ALL_KINDS
        .iter()
        .find(|k| **k == kind)
        .copied()
        .ok_or_else(|| format!("unknown kind {kind:?}"))?;
    check_type(
        "time_s",
        get("time_s").ok_or("missing \"time_s\"")?,
        FieldType::Num,
    )?;
    if let Some(raw) = get("raw_time_s") {
        check_type("raw_time_s", raw, FieldType::Num)?;
    }
    if let Some(rank) = get("rank") {
        check_type("rank", rank, FieldType::UInt)?;
    }

    let (required, optional) = kind_fields(&kind).expect("kind already validated");
    for (name, ty) in required {
        let value = get(name).ok_or_else(|| format!("kind {kind:?} missing field {name:?}"))?;
        check_type(name, value, *ty)?;
    }
    for (name, ty) in optional {
        if let Some(value) = get(name) {
            check_type(name, value, *ty)?;
        }
    }
    for (key, _) in &pairs {
        let known = matches!(
            key.as_str(),
            "v" | "kind" | "time_s" | "raw_time_s" | "rank"
        ) || required.iter().any(|(n, _)| n == key)
            || optional.iter().any(|(n, _)| n == key);
        if !known {
            return Err(format!("kind {kind:?} has unknown field {key:?}"));
        }
    }
    if canonical == "collector_segment" {
        if let Some(Value::Str(activity)) = get("activity") {
            debug_assert!(CollectorActivity::from_str_opt(activity).is_some());
        }
    }
    Ok(canonical)
}

/// Decodes one `run_metrics.jsonl` line back into an [`Event`] — the
/// inverse of [`Event::to_json_line`], used by post-hoc trace tooling
/// (`parmonc-trace`). The line is schema-validated first, so a
/// successful decode is guaranteed to be a faithful round-trip (up to
/// non-finite floats, which the wire encodes as `null` and the decoder
/// reads back as `NaN` for required fields / `None` for optional ones).
///
/// # Errors
///
/// Any [`validate_line`] error.
///
/// # Examples
///
/// ```
/// use parmonc_obs::schema::parse_line;
/// use parmonc_obs::EventKind;
///
/// let event = parse_line(
///     r#"{"v":1,"kind":"queue_high_water","time_s":0.5,"rank":0,"depth":3}"#,
/// )
/// .unwrap();
/// assert_eq!(event.kind, EventKind::QueueHighWater { depth: 3 });
/// ```
pub fn parse_line(line: &str) -> Result<Event, String> {
    use crate::event::RunMode;

    let kind_name = validate_line(line)?;
    let pairs = parse_flat_object(line)?;
    let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    // Validation already proved required fields exist with the right
    // types; the fallbacks below are unreachable but keep the
    // accessors total.
    let num = |key: &str| match get(key) {
        Some(Value::Num(n)) => *n,
        _ => f64::NAN,
    };
    let opt_num = |key: &str| match get(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    };
    let uint = |key: &str| match get(key) {
        Some(Value::Num(n)) => *n as u64,
        _ => 0,
    };
    let opt_uint = |key: &str| match get(key) {
        Some(Value::Num(n)) => Some(*n as u64),
        _ => None,
    };
    let text = |key: &str| match get(key) {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };

    let kind = match kind_name {
        "run_started" => EventKind::RunStarted {
            mode: if text("mode") == "simcluster" {
                RunMode::SimCluster
            } else {
                RunMode::Threads
            },
            processors: uint("processors") as usize,
            max_sample_volume: uint("max_sample_volume"),
            seqnum: opt_uint("seqnum"),
            nrow: opt_uint("nrow").map(|n| n as usize),
            ncol: opt_uint("ncol").map(|n| n as usize),
            transport: crate::event::RunTransport::from_str_opt(&text("transport")),
        },
        "realizations" => EventKind::Realizations {
            completed: uint("completed"),
            compute_seconds: num("compute_seconds"),
        },
        "message_sent" => EventKind::MessageSent {
            dest: uint("dest") as usize,
            tag: uint("tag") as u32,
            bytes: uint("bytes"),
        },
        "message_received" => EventKind::MessageReceived {
            source: uint("source") as usize,
            tag: uint("tag") as u32,
            bytes: uint("bytes"),
            queue_depth: uint("queue_depth"),
        },
        "queue_high_water" => EventKind::QueueHighWater {
            depth: uint("depth"),
        },
        "averaging_pass" => EventKind::AveragingPass {
            volume: uint("volume"),
            duration_seconds: num("duration_seconds"),
            eps_max: opt_num("eps_max"),
            max_snapshot_age_seconds: opt_num("max_snapshot_age_seconds"),
        },
        "save_point" => EventKind::SavePoint {
            volume: uint("volume"),
            duration_seconds: num("duration_seconds"),
        },
        "collector_segment" => EventKind::CollectorSegment {
            activity: CollectorActivity::from_str_opt(&text("activity"))
                .unwrap_or(CollectorActivity::Waiting),
            start_s: num("start_s"),
            end_s: num("end_s"),
        },
        "run_completed" => EventKind::RunCompleted {
            realizations: uint("realizations"),
            t_comp_seconds: num("t_comp_seconds"),
            messages: uint("messages"),
            bytes: uint("bytes"),
        },
        "fault_injected" => EventKind::FaultInjected {
            fault: text("fault"),
            detail: opt_uint("detail"),
        },
        "worker_lost" => EventKind::WorkerLost {
            worker: uint("worker") as usize,
            received_realizations: uint("received_realizations"),
        },
        "work_reassigned" => EventKind::WorkReassigned {
            from_worker: uint("from_worker") as usize,
            to_worker: uint("to_worker") as usize,
            realizations: uint("realizations"),
        },
        "checkpoint_recovered" => EventKind::CheckpointRecovered {
            volume: uint("volume"),
        },
        "metrics_snapshot" => EventKind::MetricsSnapshot {
            functional: uint("functional"),
            n: uint("n"),
            mean: opt_num("mean"),
            err: opt_num("err"),
        },
        "target_precision_reached" => EventKind::TargetPrecisionReached {
            n: uint("n"),
            eps_max: num("eps_max"),
            target: num("target"),
        },
        "worker_joined" => EventKind::WorkerJoined {
            worker: uint("worker") as usize,
            addr: match get("addr") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
        },
        "worker_left" => EventKind::WorkerLeft {
            worker: uint("worker") as usize,
        },
        "worker_reconnected" => EventKind::WorkerReconnected {
            worker: uint("worker") as usize,
        },
        "collector_resumed" => EventKind::CollectorResumed {
            epoch: text("epoch"),
            leases: uint("leases") as usize,
        },
        "torn_frame" => EventKind::TornFrame {
            source: uint("source") as usize,
        },
        "span_started" => EventKind::SpanStarted {
            span: uint("span"),
            parent: opt_uint("parent"),
            phase: crate::event::SpanPhase::from_str_opt(&text("phase"))
                .unwrap_or(crate::event::SpanPhase::RealizationBatch),
        },
        "span_ended" => EventKind::SpanEnded {
            span: uint("span"),
            phase: crate::event::SpanPhase::from_str_opt(&text("phase"))
                .unwrap_or(crate::event::SpanPhase::RealizationBatch),
        },
        "wire_stats" => EventKind::WireStats {
            link: uint("link") as usize,
            frames_in: uint("frames_in"),
            bytes_in: uint("bytes_in"),
            frames_out: uint("frames_out"),
            bytes_out: uint("bytes_out"),
            dials: uint("dials"),
            dedup_dropped: uint("dedup_dropped"),
            events_dropped: uint("events_dropped"),
        },
        _ => unreachable!("validate_line only returns known kinds"),
    };
    Ok(Event {
        time_s: num("time_s"),
        rank: opt_uint("rank").map(|r| r as usize),
        raw_time_s: opt_num("raw_time_s"),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, RunMode};

    fn line(kind: EventKind) -> String {
        Event::at(0.25, Some(1), kind).to_json_line()
    }

    /// One populated sample of every event kind, in schema order.
    fn all_kind_samples() -> Vec<EventKind> {
        vec![
            EventKind::RunStarted {
                mode: RunMode::SimCluster,
                processors: 8,
                max_sample_volume: 1000,
                seqnum: Some(3),
                nrow: Some(1),
                ncol: Some(2),
                transport: None,
            },
            EventKind::Realizations {
                completed: 12,
                compute_seconds: 0.5,
            },
            EventKind::MessageSent {
                dest: 0,
                tag: 1,
                bytes: 48,
            },
            EventKind::MessageReceived {
                source: 2,
                tag: 1,
                bytes: 48,
                queue_depth: 4,
            },
            EventKind::QueueHighWater { depth: 5 },
            EventKind::AveragingPass {
                volume: 100,
                duration_seconds: 0.01,
                eps_max: Some(0.002),
                max_snapshot_age_seconds: Some(1.5),
            },
            EventKind::SavePoint {
                volume: 100,
                duration_seconds: 0.001,
            },
            EventKind::CollectorSegment {
                activity: crate::event::CollectorActivity::Receiving,
                start_s: 0.0,
                end_s: 1.0,
            },
            EventKind::RunCompleted {
                realizations: 1000,
                t_comp_seconds: 2.0,
                messages: 40,
                bytes: 1920,
            },
            EventKind::FaultInjected {
                fault: "message_drop".into(),
                detail: Some(7),
            },
            EventKind::WorkerLost {
                worker: 3,
                received_realizations: 120,
            },
            EventKind::WorkReassigned {
                from_worker: 3,
                to_worker: 1,
                realizations: 40,
            },
            EventKind::CheckpointRecovered { volume: 500 },
            EventKind::MetricsSnapshot {
                functional: 1,
                n: 200,
                mean: Some(0.785),
                err: Some(0.003),
            },
            EventKind::TargetPrecisionReached {
                n: 200,
                eps_max: 0.0019,
                target: 0.002,
            },
            EventKind::WorkerJoined {
                worker: 2,
                addr: Some("10.0.0.5:49152".into()),
            },
            EventKind::WorkerLeft { worker: 2 },
            EventKind::WorkerReconnected { worker: 2 },
            EventKind::CollectorResumed {
                epoch: "1f9add3c0e7b2a45".into(),
                leases: 3,
            },
            EventKind::TornFrame { source: 2 },
            EventKind::SpanStarted {
                span: (2 << 40) | 7,
                parent: Some(2 << 40),
                phase: crate::event::SpanPhase::SubtotalSend,
            },
            EventKind::SpanEnded {
                span: (2 << 40) | 7,
                phase: crate::event::SpanPhase::SubtotalSend,
            },
            EventKind::WireStats {
                link: 2,
                frames_in: 120,
                bytes_in: 9800,
                frames_out: 4,
                bytes_out: 112,
                dials: 1,
                dedup_dropped: 3,
                events_dropped: 0,
            },
        ]
    }

    #[test]
    fn every_encoded_kind_validates() {
        let kinds = all_kind_samples();
        assert_eq!(kinds.len(), EventKind::ALL_KINDS.len());
        for kind in kinds {
            let expected = kind.name();
            let encoded = line(kind);
            assert_eq!(
                validate_line(&encoded).as_deref(),
                Ok(expected),
                "line: {encoded}"
            );
        }
    }

    #[test]
    fn parse_line_round_trips_every_kind() {
        for kind in all_kind_samples() {
            let event = Event::at(0.25, Some(1), kind);
            let decoded = parse_line(&event.to_json_line()).expect("round trip");
            assert_eq!(decoded, event);
        }
        // Rank-less events round-trip too.
        let event = Event::at(3.5, None, EventKind::QueueHighWater { depth: 2 });
        assert_eq!(parse_line(&event.to_json_line()).unwrap(), event);
    }

    #[test]
    fn raw_time_round_trips_on_any_kind() {
        let event = Event {
            time_s: 1.5,
            rank: Some(2),
            raw_time_s: Some(7.25),
            kind: EventKind::Realizations {
                completed: 10,
                compute_seconds: 0.5,
            },
        };
        let encoded = event.to_json_line();
        assert_eq!(validate_line(&encoded), Ok("realizations"));
        assert_eq!(parse_line(&encoded).unwrap(), event);
    }

    #[test]
    fn parse_line_rejects_what_validate_rejects() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"v":1,"kind":"mystery","time_s":0}"#).is_err());
    }

    #[test]
    fn transport_label_round_trips() {
        let event = Event::at(
            0.0,
            None,
            EventKind::RunStarted {
                mode: RunMode::Threads,
                processors: 4,
                max_sample_volume: 100,
                seqnum: Some(0),
                nrow: Some(1),
                ncol: Some(1),
                transport: Some(crate::event::RunTransport::Processes),
            },
        );
        let encoded = event.to_json_line();
        assert_eq!(validate_line(&encoded), Ok("run_started"));
        assert_eq!(parse_line(&encoded).unwrap(), event);
    }

    #[test]
    fn null_floats_validate() {
        let encoded = line(EventKind::SavePoint {
            volume: 1,
            duration_seconds: f64::NAN,
        });
        assert!(encoded.contains("null"));
        assert_eq!(validate_line(&encoded), Ok("save_point"));
    }

    #[test]
    fn rejects_bad_lines() {
        for (bad, why) in [
            ("not json", "malformed"),
            (
                r#"{"v":2,"kind":"queue_high_water","time_s":0,"depth":1}"#,
                "wrong version",
            ),
            (r#"{"v":1,"kind":"mystery","time_s":0}"#, "unknown kind"),
            (
                r#"{"v":1,"kind":"queue_high_water","time_s":0}"#,
                "missing field",
            ),
            (
                r#"{"v":1,"kind":"queue_high_water","time_s":0,"depth":-1}"#,
                "negative uint",
            ),
            (
                r#"{"v":1,"kind":"queue_high_water","time_s":0,"depth":1,"extra":2}"#,
                "unknown field",
            ),
            (
                r#"{"v":1,"kind":"collector_segment","time_s":0,"activity":"napping","start_s":0,"end_s":1}"#,
                "bad activity",
            ),
            (
                r#"{"v":1,"kind":"queue_high_water","time_s":0,"depth":1,"depth":1}"#,
                "duplicate key",
            ),
            (
                r#"{"v":1,"kind":"fault_injected","time_s":0,"fault":"gremlin"}"#,
                "unknown fault name",
            ),
            (
                r#"{"v":1,"kind":"run_started","time_s":0,"mode":"threads","processors":1,"max_sample_volume":1,"transport":"telepathy"}"#,
                "unknown transport name",
            ),
            (
                r#"{"v":1,"kind":"span_started","time_s":0,"rank":1,"span":3,"phase":"daydreaming"}"#,
                "unknown span phase",
            ),
            (
                r#"{"v":1,"kind":"realizations","time_s":0,"raw_time_s":"later","rank":1,"completed":1,"compute_seconds":0}"#,
                "non-numeric raw_time_s",
            ),
        ] {
            assert!(validate_line(bad).is_err(), "should reject ({why}): {bad}");
        }
    }

    #[test]
    fn parser_handles_empty_object() {
        // Empty objects parse but fail validation (missing "v").
        assert!(parse_flat_object("{}").unwrap().is_empty());
        assert!(validate_line("{}").is_err());
    }
}
