//! Causal tracing spans over the event plane.
//!
//! A span is a pair of `span_started` / `span_ended` events wrapping
//! one of the run phases in [`SpanPhase`]. Span ids are run-unique
//! without coordination: the emitting rank lives in the high bits and
//! a process-local counter in the low bits, so spans from different
//! hosts never collide once their events merge on the collector's
//! corrected run clock.
//!
//! Span tracing is opt-in on top of the monitor (the vocabulary of a
//! plain monitored run is unchanged), and the disabled emitter costs
//! one branch per call — the same zero-cost discipline as
//! [`Monitor::disabled`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{EventKind, SpanPhase};
use crate::monitor::Monitor;

/// Process-local span counter; combined with the rank bits it makes
/// ids unique across every process of a run.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// How far the rank is shifted into a span id's high bits. 2^40 spans
/// per process is unreachable in practice (a year-long run emitting a
/// million spans per second), and 24 bits of rank is far beyond any
/// leased membership.
const RANK_SHIFT: u32 = 40;

/// Allocates a run-unique span id for `rank`.
#[must_use]
pub(crate) fn fresh_span_id(rank: usize) -> u64 {
    let n = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & ((1 << RANK_SHIFT) - 1);
    ((rank as u64 + 1) << RANK_SHIFT) | n
}

/// Emits tracing spans for one rank through a [`Monitor`].
///
/// # Examples
///
/// ```
/// use parmonc_obs::{MemorySink, Monitor, SpanEmitter, SpanPhase};
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
/// let spans = SpanEmitter::new(&monitor, 1, true);
///
/// let batch = spans.start(SpanPhase::RealizationBatch, None);
/// let send = spans.start(SpanPhase::SubtotalSend, Some(batch));
/// spans.end(send, SpanPhase::SubtotalSend);
/// spans.end(batch, SpanPhase::RealizationBatch);
/// assert_eq!(sink.snapshot().len(), 4);
///
/// // Disabled: no ids allocated, nothing emitted.
/// let off = SpanEmitter::new(&monitor, 1, false);
/// assert_eq!(off.start(SpanPhase::Checkpoint, None), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SpanEmitter {
    monitor: Monitor,
    rank: usize,
    enabled: bool,
}

impl SpanEmitter {
    /// An emitter for `rank`. `enabled` gates the whole plane: span
    /// tracing is opt-in even on monitored runs, so traces keep their
    /// pre-span vocabulary unless asked.
    #[must_use]
    pub fn new(monitor: &Monitor, rank: usize, enabled: bool) -> Self {
        Self {
            monitor: monitor.clone(),
            rank,
            enabled: enabled && monitor.is_enabled(),
        }
    }

    /// A permanently disabled emitter.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            monitor: Monitor::disabled(),
            rank: 0,
            enabled: false,
        }
    }

    /// Whether spans are actually emitted.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span and returns its id (0 when disabled — `end` treats
    /// 0 as "never started", so callers need no branches of their own).
    pub fn start(&self, phase: SpanPhase, parent: Option<u64>) -> u64 {
        if !self.enabled {
            return 0;
        }
        let span = fresh_span_id(self.rank);
        self.monitor.emit(
            Some(self.rank),
            EventKind::SpanStarted {
                span,
                parent: parent.filter(|p| *p != 0),
                phase,
            },
        );
        span
    }

    /// Closes a span opened by [`SpanEmitter::start`]; a 0 id (from a
    /// disabled emitter) is ignored.
    pub fn end(&self, span: u64, phase: SpanPhase) {
        if self.enabled && span != 0 {
            self.monitor
                .emit(Some(self.rank), EventKind::SpanEnded { span, phase });
        }
    }

    /// Emits a complete span retroactively with explicit start/end
    /// timestamps (same clock as [`Monitor::elapsed_s`]). For phases
    /// measured while holding a lock the forwarding sink itself needs
    /// — the TCP reconnect path times itself under the writer lock and
    /// reports the span only once the lock is free. Returns the span
    /// id (0 when disabled).
    pub fn closed_at(&self, phase: SpanPhase, start_s: f64, end_s: f64) -> u64 {
        if !self.enabled {
            return 0;
        }
        let span = fresh_span_id(self.rank);
        self.monitor.emit_aligned(
            start_s,
            None,
            Some(self.rank),
            EventKind::SpanStarted {
                span,
                parent: None,
                phase,
            },
        );
        self.monitor.emit_aligned(
            end_s,
            None,
            Some(self.rank),
            EventKind::SpanEnded { span, phase },
        );
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MemorySink;
    use std::sync::Arc;

    #[test]
    fn ids_are_unique_and_rank_tagged() {
        let monitor = Monitor::new(vec![Box::new(Arc::new(MemorySink::new()))]);
        let a = SpanEmitter::new(&monitor, 1, true);
        let b = SpanEmitter::new(&monitor, 2, true);
        let ids: Vec<u64> = (0..8)
            .map(|i| if i % 2 == 0 { &a } else { &b }.start(SpanPhase::RealizationBatch, None))
            .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "span ids collided: {ids:?}");
        for (i, id) in ids.iter().enumerate() {
            let rank = (id >> RANK_SHIFT) - 1;
            assert_eq!(rank, if i % 2 == 0 { 1 } else { 2 });
        }
    }

    #[test]
    fn parent_links_survive_the_wire() {
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let spans = SpanEmitter::new(&monitor, 3, true);
        let outer = spans.start(SpanPhase::RealizationBatch, None);
        let inner = spans.start(SpanPhase::SubtotalSend, Some(outer));
        spans.end(inner, SpanPhase::SubtotalSend);
        spans.end(outer, SpanPhase::RealizationBatch);
        let events = sink.snapshot();
        assert_eq!(events.len(), 4);
        match &events[1].kind {
            EventKind::SpanStarted { span, parent, .. } => {
                assert_eq!(*span, inner);
                assert_eq!(*parent, Some(outer));
            }
            other => panic!("expected span_started, got {other:?}"),
        }
        for event in &events {
            crate::schema::validate_line(&event.to_json_line()).unwrap();
        }
    }

    #[test]
    fn disabled_emitter_allocates_nothing() {
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let spans = SpanEmitter::new(&monitor, 1, false);
        let id = spans.start(SpanPhase::Checkpoint, None);
        assert_eq!(id, 0);
        spans.end(id, SpanPhase::Checkpoint);
        assert!(sink.is_empty());
        assert!(!SpanEmitter::disabled().is_enabled());
        // A monitored-off emitter is also inert even when asked for spans.
        assert!(!SpanEmitter::new(&Monitor::disabled(), 0, true).is_enabled());
    }
}
