//! The unified event schema: every metric the runner, the MPI
//! substrate and the cluster simulator can report, with its JSONL
//! encoding.
//!
//! One [`Event`] is one line of `run_metrics.jsonl`. The schema is
//! documented field-by-field in `docs/observability.md`; the encoder
//! here and the validator in [`crate::schema`] are the two normative
//! implementations.

use std::fmt::Write as _;

/// Schema version stamped on every emitted line (the `"v"` field).
pub const SCHEMA_VERSION: u64 = 1;

/// Which engine produced a trace: real threads or the discrete-event
/// cluster simulator. Both emit the same event kinds so traces are
/// directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The real-thread runner (`parmonc::runner`).
    Threads,
    /// The virtual-time simulator (`parmonc-simcluster`).
    SimCluster,
}

impl RunMode {
    /// The wire name of the mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Threads => "threads",
            Self::SimCluster => "simcluster",
        }
    }
}

/// Which transport substrate carried a real run's rank traffic: the
/// in-process thread channels, the multi-process Unix-socket backend,
/// or the multi-host TCP backend. Distinct from [`RunMode`]: the
/// simulator has no transport, and all transports run the identical
/// collector code, so the label appears as an *optional* `transport`
/// field on `run_started`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunTransport {
    /// Ranks are OS threads exchanging envelopes over channels.
    Threads,
    /// Ranks are forked worker processes exchanging envelopes over
    /// Unix-domain sockets (`parmonc-ipc`).
    Processes,
    /// Ranks are remote worker processes dialing the collector over
    /// TCP, with elastic membership (`parmonc-ipc`'s `tcp` module).
    Tcp,
}

impl RunTransport {
    /// The wire name of the transport.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Threads => "threads",
            Self::Processes => "processes",
            Self::Tcp => "tcp",
        }
    }

    /// Parses a wire name back into the transport.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(Self::Threads),
            "processes" => Some(Self::Processes),
            "tcp" => Some(Self::Tcp),
            _ => None,
        }
    }
}

/// What the collector (rank 0) was doing during a trace segment.
///
/// This enum used to live in `parmonc-simcluster`; it moved here so the
/// real-thread runner and the simulator label collector time with the
/// same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectorActivity {
    /// Simulating its own realizations.
    Computing,
    /// Receiving and folding worker subtotals.
    Receiving,
    /// Averaging and writing a save-point.
    Saving,
    /// Idle, waiting for messages.
    Waiting,
}

impl CollectorActivity {
    /// The wire name of the activity.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Computing => "computing",
            Self::Receiving => "receiving",
            Self::Saving => "saving",
            Self::Waiting => "waiting",
        }
    }

    /// Parses a wire name back into the activity.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "computing" => Some(Self::Computing),
            "receiving" => Some(Self::Receiving),
            "saving" => Some(Self::Saving),
            "waiting" => Some(Self::Waiting),
            _ => None,
        }
    }
}

/// The run phase a tracing span covers.
///
/// Spans wrap the phases that already exist implicitly in the runner
/// and worker loops; the vocabulary is fixed so the trace tooling
/// (`parmonc-trace timeline` / `critical-path`) can reason about
/// dependencies between phases without free-text matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Positioning the leapfrog stream cursor for a rank's quota.
    StreamPosition,
    /// One batch of realizations between exchange points.
    RealizationBatch,
    /// Encoding and sending one cumulative subtotal.
    SubtotalSend,
    /// The collector folding received subtotals and averaging.
    CollectorMerge,
    /// The collector writing a checkpoint / save-point.
    Checkpoint,
    /// An interior relay rank (tree collection topology) coalescing
    /// its children's latest subtotals into one upstream batch.
    RelayMerge,
    /// A worker redialing the collector after a broken link.
    Reconnect,
}

impl SpanPhase {
    /// The wire name of the phase.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::StreamPosition => "stream_position",
            Self::RealizationBatch => "realization_batch",
            Self::SubtotalSend => "subtotal_send",
            Self::CollectorMerge => "collector_merge",
            Self::Checkpoint => "checkpoint",
            Self::RelayMerge => "relay_merge",
            Self::Reconnect => "reconnect",
        }
    }

    /// Parses a wire name back into the phase.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "stream_position" => Some(Self::StreamPosition),
            "realization_batch" => Some(Self::RealizationBatch),
            "subtotal_send" => Some(Self::SubtotalSend),
            "collector_merge" => Some(Self::CollectorMerge),
            "checkpoint" => Some(Self::Checkpoint),
            "relay_merge" => Some(Self::RelayMerge),
            "reconnect" => Some(Self::Reconnect),
            _ => None,
        }
    }

    /// Every phase name, in schema order.
    pub const ALL: [&'static str; 7] = [
        "stream_position",
        "realization_batch",
        "subtotal_send",
        "collector_merge",
        "checkpoint",
        "relay_merge",
        "reconnect",
    ];
}

/// The payload of one monitor event.
///
/// Kinds map 1:1 to the `"kind"` discriminator on the wire; see
/// `docs/observability.md` for units and paper mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A run began. First event of every trace.
    RunStarted {
        /// Real threads or the cluster simulator.
        mode: RunMode,
        /// Processor (rank) count `M`.
        processors: usize,
        /// Target total sample volume `maxsv` / `L`.
        max_sample_volume: u64,
        /// The "experiments" subsequence number; `None` for virtual
        /// runs, which draw no random numbers.
        seqnum: Option<u64>,
        /// Realization matrix rows; `None` for virtual runs.
        nrow: Option<usize>,
        /// Realization matrix columns; `None` for virtual runs.
        ncol: Option<usize>,
        /// Which transport substrate carries rank traffic; `None` for
        /// virtual (simulated) runs, which have no transport.
        transport: Option<RunTransport>,
    },
    /// A rank's cumulative realization progress (emitted at exchange
    /// points, not per realization, to bound overhead).
    Realizations {
        /// Realizations completed by this rank so far.
        completed: u64,
        /// Seconds this rank has spent computing realizations so far.
        compute_seconds: f64,
    },
    /// A point-to-point message left a rank.
    MessageSent {
        /// Destination rank.
        dest: usize,
        /// Message tag (the runner uses 1 = subtotal, 2 = final,
        /// 3 = stop).
        tag: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A point-to-point message was delivered to its receiver.
    MessageReceived {
        /// Source rank.
        source: usize,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: u64,
        /// Messages still queued for this receiver after the delivery.
        queue_depth: u64,
    },
    /// A receiver's queue depth reached a new maximum.
    QueueHighWater {
        /// The new high-water mark (messages enqueued and undelivered).
        depth: u64,
    },
    /// The collector averaged all subtotals received so far
    /// (formula (5)).
    AveragingPass {
        /// Total sample volume folded into the average.
        volume: u64,
        /// Wall (or virtual) seconds the pass took, including the
        /// save-point write.
        duration_seconds: f64,
        /// Largest absolute stochastic error after the pass; absent in
        /// virtual runs, which carry no estimates.
        eps_max: Option<f64>,
        /// Age of the stalest per-rank subtotal folded in; absent if no
        /// worker has reported yet.
        max_snapshot_age_seconds: Option<f64>,
    },
    /// The collector rewrote the result files.
    SavePoint {
        /// Total sample volume in the saved results.
        volume: u64,
        /// Seconds the write took.
        duration_seconds: f64,
    },
    /// One contiguous activity segment on the collector's timeline.
    CollectorSegment {
        /// What the collector was doing.
        activity: CollectorActivity,
        /// Segment start, seconds since run start.
        start_s: f64,
        /// Segment end, seconds since run start.
        end_s: f64,
    },
    /// The run finished. Last event of every trace.
    RunCompleted {
        /// Realizations simulated by the run.
        realizations: u64,
        /// The paper's `T_comp`: seconds from start until the collector
        /// saved the final results.
        t_comp_seconds: f64,
        /// Subtotal messages the collector received.
        messages: u64,
        /// Payload bytes the collector received.
        bytes: u64,
    },
    /// The deterministic fault plane injected a scripted fault.
    FaultInjected {
        /// Which fault fired, from the fixed vocabulary
        /// (`rank_crash`, `message_drop`, `message_duplicate`,
        /// `message_delay`, `torn_write`, `bit_flip`, `io_interrupt`).
        fault: String,
        /// Kind-specific detail: the crash realization for
        /// `rank_crash`, the message sequence number for message
        /// faults; absent for I/O faults.
        detail: Option<u64>,
    },
    /// The collector declared a worker dead after its liveness timeout
    /// expired. The worker's last *cumulative* subtotal stays in the
    /// average.
    WorkerLost {
        /// The rank declared dead.
        worker: usize,
        /// Realizations the collector had received from it, which
        /// remain in the estimate.
        received_realizations: u64,
    },
    /// The collector reassigned a dead worker's remaining realization
    /// budget to a survivor, on the survivor's own leapfrog streams.
    WorkReassigned {
        /// The dead rank whose budget is being redistributed.
        from_worker: usize,
        /// The surviving rank taking over the work.
        to_worker: usize,
        /// How many extra realizations the survivor will simulate.
        realizations: u64,
    },
    /// A resume found the primary checkpoint corrupt (or missing) and
    /// recovered from the last-good `.bak` generation.
    CheckpointRecovered {
        /// Sample volume of the recovered checkpoint.
        volume: u64,
    },
    /// One point of a functional's error-bar trajectory, emitted by the
    /// [`crate::ConvergenceTracker`] after each averaging pass.
    MetricsSnapshot {
        /// Index of the estimated functional (row-major position in the
        /// realization matrix).
        functional: u64,
        /// Total sample volume folded into the estimate.
        n: u64,
        /// The current sample mean; absent in virtual runs, which carry
        /// no estimates.
        mean: Option<f64>,
        /// The current absolute stochastic error bar; absent in virtual
        /// runs and while `n < 2`.
        err: Option<f64>,
    },
    /// The run's largest error bar first dropped to the configured
    /// target — the principled "stop when ε ≤ target" signal. Emitted
    /// at most once per run, and only when a target is configured.
    TargetPrecisionReached {
        /// Total sample volume when the target was reached.
        n: u64,
        /// The largest absolute error bar at that point.
        eps_max: f64,
        /// The configured target it dropped below.
        target: f64,
    },
    /// An elastic-membership worker completed the join handshake and
    /// was leased a rank (TCP backend only).
    WorkerJoined {
        /// The leased logical rank.
        worker: usize,
        /// The peer's socket address, when known.
        addr: Option<String>,
    },
    /// An elastic-membership worker's connection closed — worker exit,
    /// crash, or run shutdown (TCP backend only).
    WorkerLeft {
        /// The departing logical rank.
        worker: usize,
    },
    /// A worker that already held a lease re-attached after a broken
    /// connection or a collector restart, keeping its rank (TCP
    /// backend only).
    WorkerReconnected {
        /// The rank that re-attached.
        worker: usize,
    },
    /// A restarted collector re-armed an interrupted run: the lease
    /// table and checkpoint were reloaded and the original session
    /// epoch re-announced (TCP backend only).
    CollectorResumed {
        /// The session epoch, in lowercase hex (a string because JSON
        /// numbers lose precision above 2^53).
        epoch: String,
        /// How many worker ranks had ever been leased before the crash.
        leases: usize,
    },
    /// A reader hit EOF in the middle of a frame — the peer died (or
    /// the fault plane tore the frame) mid-write. The partial frame is
    /// rejected, never delivered.
    TornFrame {
        /// The rank whose link carried the torn frame.
        source: usize,
    },
    /// A tracing span opened (emitted only when span tracing is
    /// enabled). Span ids are run-unique: the emitting rank lives in
    /// the id's high bits, a process-local counter in the low bits.
    SpanStarted {
        /// The run-unique span id.
        span: u64,
        /// The enclosing span's id, if any.
        parent: Option<u64>,
        /// Which run phase the span covers.
        phase: SpanPhase,
    },
    /// A tracing span closed. Duration is `time_s` here minus `time_s`
    /// of the matching `span_started`, both on the corrected run clock.
    SpanEnded {
        /// The run-unique span id being closed.
        span: u64,
        /// The phase, repeated so a trace with a lost start event is
        /// still attributable.
        phase: SpanPhase,
    },
    /// Per-link wire telemetry, emitted when a socket link (Unix-domain
    /// or TCP) is torn down. Counts cover the link's whole life,
    /// including frames that carried protocol traffic rather than
    /// envelopes.
    WireStats {
        /// The peer rank on the other end of the link.
        link: usize,
        /// Frames read off the link.
        frames_in: u64,
        /// Payload + header bytes read off the link.
        bytes_in: u64,
        /// Frames written to the link.
        frames_out: u64,
        /// Payload + header bytes written to the link.
        bytes_out: u64,
        /// Reconnect dials attempted on the link (TCP workers only).
        dials: u64,
        /// Frames dropped as exactly-once duplicates (`admit_seq`).
        dedup_dropped: u64,
        /// Events the emitting side's sinks failed to write — a
        /// worker's forwarded-sink drop count, surfaced so the
        /// collector's summary can account for trace truncation on the
        /// far side of the wire.
        events_dropped: u64,
    },
}

impl EventKind {
    /// The wire name of the kind (the `"kind"` field).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RunStarted { .. } => "run_started",
            Self::Realizations { .. } => "realizations",
            Self::MessageSent { .. } => "message_sent",
            Self::MessageReceived { .. } => "message_received",
            Self::QueueHighWater { .. } => "queue_high_water",
            Self::AveragingPass { .. } => "averaging_pass",
            Self::SavePoint { .. } => "save_point",
            Self::CollectorSegment { .. } => "collector_segment",
            Self::RunCompleted { .. } => "run_completed",
            Self::FaultInjected { .. } => "fault_injected",
            Self::WorkerLost { .. } => "worker_lost",
            Self::WorkReassigned { .. } => "work_reassigned",
            Self::CheckpointRecovered { .. } => "checkpoint_recovered",
            Self::MetricsSnapshot { .. } => "metrics_snapshot",
            Self::TargetPrecisionReached { .. } => "target_precision_reached",
            Self::WorkerJoined { .. } => "worker_joined",
            Self::WorkerLeft { .. } => "worker_left",
            Self::WorkerReconnected { .. } => "worker_reconnected",
            Self::CollectorResumed { .. } => "collector_resumed",
            Self::TornFrame { .. } => "torn_frame",
            Self::SpanStarted { .. } => "span_started",
            Self::SpanEnded { .. } => "span_ended",
            Self::WireStats { .. } => "wire_stats",
        }
    }

    /// Every kind name, in schema order.
    pub const ALL_KINDS: [&'static str; 23] = [
        "run_started",
        "realizations",
        "message_sent",
        "message_received",
        "queue_high_water",
        "averaging_pass",
        "save_point",
        "collector_segment",
        "run_completed",
        "fault_injected",
        "worker_lost",
        "work_reassigned",
        "checkpoint_recovered",
        "metrics_snapshot",
        "target_precision_reached",
        "worker_joined",
        "worker_left",
        "worker_reconnected",
        "collector_resumed",
        "torn_frame",
        "span_started",
        "span_ended",
        "wire_stats",
    ];

    /// The kinds only emitted on fault/recovery paths; a fault-free run
    /// exercises exactly `ALL_KINDS` minus these and
    /// [`Self::CONDITIONAL_KINDS`].
    pub const FAULT_KINDS: [&'static str; 7] = [
        "fault_injected",
        "worker_lost",
        "work_reassigned",
        "checkpoint_recovered",
        "worker_reconnected",
        "collector_resumed",
        "torn_frame",
    ];

    /// The kinds that depend on run configuration rather than run
    /// health: `target_precision_reached` only fires when a
    /// `target_abs_error` is configured (and met), the membership
    /// kinds (`worker_joined`, `worker_left`) only on the
    /// elastic-membership TCP backend, the span kinds only when span
    /// tracing is enabled, and `wire_stats` only on socket transports
    /// (Unix-domain or TCP). A fault-free run emits exactly
    /// `ALL_KINDS` minus `FAULT_KINDS` minus these.
    pub const CONDITIONAL_KINDS: [&'static str; 6] = [
        "target_precision_reached",
        "worker_joined",
        "worker_left",
        "span_started",
        "span_ended",
        "wire_stats",
    ];
}

/// One monitor event: a timestamp, the emitting rank (if any), and the
/// kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds since run start — wall seconds for real runs, virtual
    /// seconds for simulated ones. For events forwarded across a
    /// clock-aligned link this is the *corrected* run-clock time.
    pub time_s: f64,
    /// The emitting rank; `None` for run-level events.
    pub rank: Option<usize>,
    /// The emitter's uncorrected local timestamp, preserved when the
    /// collector rewrote `time_s` onto the corrected run clock;
    /// `None` for events that never crossed a clock-aligned link.
    pub raw_time_s: Option<f64>,
    /// The payload.
    pub kind: EventKind,
}

/// Formats an `f64` for the wire: finite values use Rust's shortest
/// round-trip `Display`; non-finite values (which valid metrics never
/// produce, but a defensive encoder must not emit as bare words JSON
/// rejects) become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl Event {
    /// An event with no preserved raw timestamp — the common case for
    /// everything emitted on the local clock.
    #[must_use]
    pub fn at(time_s: f64, rank: Option<usize>, kind: EventKind) -> Self {
        Self {
            time_s,
            rank,
            raw_time_s: None,
            kind,
        }
    }

    /// Encodes the event as one JSONL line (no trailing newline).
    ///
    /// # Examples
    ///
    /// ```
    /// use parmonc_obs::{Event, EventKind};
    ///
    /// let line = Event::at(
    ///     1.5,
    ///     Some(2),
    ///     EventKind::Realizations { completed: 10, compute_seconds: 0.25 },
    /// )
    /// .to_json_line();
    /// assert_eq!(
    ///     line,
    ///     r#"{"v":1,"kind":"realizations","time_s":1.5,"rank":2,"completed":10,"compute_seconds":0.25}"#
    /// );
    /// ```
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"v\":{SCHEMA_VERSION},\"kind\":\"{}\"",
            self.kind.name()
        );
        s.push_str(",\"time_s\":");
        push_f64(&mut s, self.time_s);
        if let Some(raw) = self.raw_time_s {
            s.push_str(",\"raw_time_s\":");
            push_f64(&mut s, raw);
        }
        if let Some(rank) = self.rank {
            let _ = write!(s, ",\"rank\":{rank}");
        }
        match &self.kind {
            EventKind::RunStarted {
                mode,
                processors,
                max_sample_volume,
                seqnum,
                nrow,
                ncol,
                transport,
            } => {
                let _ = write!(
                    s,
                    ",\"mode\":\"{}\",\"processors\":{processors},\"max_sample_volume\":{max_sample_volume}",
                    mode.as_str()
                );
                if let Some(seqnum) = seqnum {
                    let _ = write!(s, ",\"seqnum\":{seqnum}");
                }
                if let Some(nrow) = nrow {
                    let _ = write!(s, ",\"nrow\":{nrow}");
                }
                if let Some(ncol) = ncol {
                    let _ = write!(s, ",\"ncol\":{ncol}");
                }
                if let Some(transport) = transport {
                    let _ = write!(s, ",\"transport\":\"{}\"", transport.as_str());
                }
            }
            EventKind::Realizations {
                completed,
                compute_seconds,
            } => {
                let _ = write!(s, ",\"completed\":{completed},\"compute_seconds\":");
                push_f64(&mut s, *compute_seconds);
            }
            EventKind::MessageSent { dest, tag, bytes } => {
                let _ = write!(s, ",\"dest\":{dest},\"tag\":{tag},\"bytes\":{bytes}");
            }
            EventKind::MessageReceived {
                source,
                tag,
                bytes,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"source\":{source},\"tag\":{tag},\"bytes\":{bytes},\"queue_depth\":{queue_depth}"
                );
            }
            EventKind::QueueHighWater { depth } => {
                let _ = write!(s, ",\"depth\":{depth}");
            }
            EventKind::AveragingPass {
                volume,
                duration_seconds,
                eps_max,
                max_snapshot_age_seconds,
            } => {
                let _ = write!(s, ",\"volume\":{volume},\"duration_seconds\":");
                push_f64(&mut s, *duration_seconds);
                if let Some(eps) = eps_max {
                    s.push_str(",\"eps_max\":");
                    push_f64(&mut s, *eps);
                }
                if let Some(age) = max_snapshot_age_seconds {
                    s.push_str(",\"max_snapshot_age_seconds\":");
                    push_f64(&mut s, *age);
                }
            }
            EventKind::SavePoint {
                volume,
                duration_seconds,
            } => {
                let _ = write!(s, ",\"volume\":{volume},\"duration_seconds\":");
                push_f64(&mut s, *duration_seconds);
            }
            EventKind::CollectorSegment {
                activity,
                start_s,
                end_s,
            } => {
                let _ = write!(s, ",\"activity\":\"{}\",\"start_s\":", activity.as_str());
                push_f64(&mut s, *start_s);
                s.push_str(",\"end_s\":");
                push_f64(&mut s, *end_s);
            }
            EventKind::RunCompleted {
                realizations,
                t_comp_seconds,
                messages,
                bytes,
            } => {
                let _ = write!(s, ",\"realizations\":{realizations},\"t_comp_seconds\":");
                push_f64(&mut s, *t_comp_seconds);
                let _ = write!(s, ",\"messages\":{messages},\"bytes\":{bytes}");
            }
            EventKind::FaultInjected { fault, detail } => {
                let _ = write!(s, ",\"fault\":\"{fault}\"");
                if let Some(detail) = detail {
                    let _ = write!(s, ",\"detail\":{detail}");
                }
            }
            EventKind::WorkerLost {
                worker,
                received_realizations,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"received_realizations\":{received_realizations}"
                );
            }
            EventKind::WorkReassigned {
                from_worker,
                to_worker,
                realizations,
            } => {
                let _ = write!(
                    s,
                    ",\"from_worker\":{from_worker},\"to_worker\":{to_worker},\"realizations\":{realizations}"
                );
            }
            EventKind::CheckpointRecovered { volume } => {
                let _ = write!(s, ",\"volume\":{volume}");
            }
            EventKind::MetricsSnapshot {
                functional,
                n,
                mean,
                err,
            } => {
                let _ = write!(s, ",\"functional\":{functional},\"n\":{n}");
                if let Some(mean) = mean {
                    s.push_str(",\"mean\":");
                    push_f64(&mut s, *mean);
                }
                if let Some(err) = err {
                    s.push_str(",\"err\":");
                    push_f64(&mut s, *err);
                }
            }
            EventKind::TargetPrecisionReached { n, eps_max, target } => {
                let _ = write!(s, ",\"n\":{n},\"eps_max\":");
                push_f64(&mut s, *eps_max);
                s.push_str(",\"target\":");
                push_f64(&mut s, *target);
            }
            EventKind::WorkerJoined { worker, addr } => {
                let _ = write!(s, ",\"worker\":{worker}");
                if let Some(addr) = addr {
                    // Socket addresses never contain characters that
                    // need JSON escaping.
                    let _ = write!(s, ",\"addr\":\"{addr}\"");
                }
            }
            EventKind::WorkerLeft { worker } => {
                let _ = write!(s, ",\"worker\":{worker}");
            }
            EventKind::WorkerReconnected { worker } => {
                let _ = write!(s, ",\"worker\":{worker}");
            }
            EventKind::CollectorResumed { epoch, leases } => {
                // The epoch is hex digits only, never needing escapes.
                let _ = write!(s, ",\"epoch\":\"{epoch}\",\"leases\":{leases}");
            }
            EventKind::TornFrame { source } => {
                let _ = write!(s, ",\"source\":{source}");
            }
            EventKind::SpanStarted {
                span,
                parent,
                phase,
            } => {
                let _ = write!(s, ",\"span\":{span}");
                if let Some(parent) = parent {
                    let _ = write!(s, ",\"parent\":{parent}");
                }
                let _ = write!(s, ",\"phase\":\"{}\"", phase.as_str());
            }
            EventKind::SpanEnded { span, phase } => {
                let _ = write!(s, ",\"span\":{span},\"phase\":\"{}\"", phase.as_str());
            }
            EventKind::WireStats {
                link,
                frames_in,
                bytes_in,
                frames_out,
                bytes_out,
                dials,
                dedup_dropped,
                events_dropped,
            } => {
                let _ = write!(
                    s,
                    ",\"link\":{link},\"frames_in\":{frames_in},\"bytes_in\":{bytes_in},\
                     \"frames_out\":{frames_out},\"bytes_out\":{bytes_out},\"dials\":{dials},\
                     \"dedup_dropped\":{dedup_dropped},\"events_dropped\":{events_dropped}"
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_all_kinds_list() {
        let kinds: Vec<EventKind> = vec![
            EventKind::RunStarted {
                mode: RunMode::Threads,
                processors: 1,
                max_sample_volume: 1,
                seqnum: None,
                nrow: None,
                ncol: None,
                transport: None,
            },
            EventKind::Realizations {
                completed: 0,
                compute_seconds: 0.0,
            },
            EventKind::MessageSent {
                dest: 0,
                tag: 0,
                bytes: 0,
            },
            EventKind::MessageReceived {
                source: 0,
                tag: 0,
                bytes: 0,
                queue_depth: 0,
            },
            EventKind::QueueHighWater { depth: 0 },
            EventKind::AveragingPass {
                volume: 0,
                duration_seconds: 0.0,
                eps_max: None,
                max_snapshot_age_seconds: None,
            },
            EventKind::SavePoint {
                volume: 0,
                duration_seconds: 0.0,
            },
            EventKind::CollectorSegment {
                activity: CollectorActivity::Waiting,
                start_s: 0.0,
                end_s: 0.0,
            },
            EventKind::RunCompleted {
                realizations: 0,
                t_comp_seconds: 0.0,
                messages: 0,
                bytes: 0,
            },
            EventKind::FaultInjected {
                fault: "rank_crash".into(),
                detail: None,
            },
            EventKind::WorkerLost {
                worker: 0,
                received_realizations: 0,
            },
            EventKind::WorkReassigned {
                from_worker: 0,
                to_worker: 0,
                realizations: 0,
            },
            EventKind::CheckpointRecovered { volume: 0 },
            EventKind::MetricsSnapshot {
                functional: 0,
                n: 0,
                mean: None,
                err: None,
            },
            EventKind::TargetPrecisionReached {
                n: 0,
                eps_max: 0.0,
                target: 0.0,
            },
            EventKind::WorkerJoined {
                worker: 0,
                addr: None,
            },
            EventKind::WorkerLeft { worker: 0 },
            EventKind::WorkerReconnected { worker: 0 },
            EventKind::CollectorResumed {
                epoch: "0".into(),
                leases: 0,
            },
            EventKind::TornFrame { source: 0 },
            EventKind::SpanStarted {
                span: 0,
                parent: None,
                phase: SpanPhase::StreamPosition,
            },
            EventKind::SpanEnded {
                span: 0,
                phase: SpanPhase::StreamPosition,
            },
            EventKind::WireStats {
                link: 0,
                frames_in: 0,
                bytes_in: 0,
                frames_out: 0,
                bytes_out: 0,
                dials: 0,
                dedup_dropped: 0,
                events_dropped: 0,
            },
        ];
        let names: Vec<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names, EventKind::ALL_KINDS);
    }

    #[test]
    fn fault_kinds_are_a_subset_of_all_kinds() {
        for kind in EventKind::FAULT_KINDS {
            assert!(EventKind::ALL_KINDS.contains(&kind), "{kind} missing");
        }
        for kind in EventKind::CONDITIONAL_KINDS {
            assert!(EventKind::ALL_KINDS.contains(&kind), "{kind} missing");
            assert!(
                !EventKind::FAULT_KINDS.contains(&kind),
                "{kind} double-listed"
            );
        }
    }

    #[test]
    fn metrics_snapshot_optional_fields_are_omitted() {
        let bare = Event::at(
            0.0,
            Some(0),
            EventKind::MetricsSnapshot {
                functional: 2,
                n: 100,
                mean: None,
                err: None,
            },
        )
        .to_json_line();
        assert!(bare.contains("\"functional\":2"));
        assert!(bare.contains("\"n\":100"));
        assert!(!bare.contains("mean"));
        assert!(!bare.contains("err"));

        let full = Event::at(
            0.0,
            Some(0),
            EventKind::MetricsSnapshot {
                functional: 0,
                n: 100,
                mean: Some(0.5),
                err: Some(0.01),
            },
        )
        .to_json_line();
        assert!(full.contains("\"mean\":0.5"));
        assert!(full.contains("\"err\":0.01"));
    }

    #[test]
    fn optional_fields_are_omitted() {
        let line = Event::at(
            0.0,
            None,
            EventKind::AveragingPass {
                volume: 5,
                duration_seconds: 0.1,
                eps_max: None,
                max_snapshot_age_seconds: None,
            },
        )
        .to_json_line();
        assert!(!line.contains("eps_max"));
        assert!(!line.contains("rank"));
        assert!(line.contains("\"volume\":5"));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let line = Event::at(
            f64::NAN,
            Some(0),
            EventKind::SavePoint {
                volume: 1,
                duration_seconds: f64::INFINITY,
            },
        )
        .to_json_line();
        assert!(line.contains("\"time_s\":null"));
        assert!(line.contains("\"duration_seconds\":null"));
    }

    #[test]
    fn run_transport_round_trips_and_encodes_optionally() {
        for t in [
            RunTransport::Threads,
            RunTransport::Processes,
            RunTransport::Tcp,
        ] {
            assert_eq!(RunTransport::from_str_opt(t.as_str()), Some(t));
        }
        assert_eq!(RunTransport::from_str_opt("carrier-pigeon"), None);

        let make = |transport| {
            Event::at(
                0.0,
                None,
                EventKind::RunStarted {
                    mode: RunMode::Threads,
                    processors: 2,
                    max_sample_volume: 10,
                    seqnum: Some(0),
                    nrow: Some(1),
                    ncol: Some(1),
                    transport,
                },
            )
        };
        let labeled = make(Some(RunTransport::Processes)).to_json_line();
        assert!(labeled.contains("\"transport\":\"processes\""));
        let bare = make(None).to_json_line();
        assert!(!bare.contains("transport"));
    }

    #[test]
    fn span_phase_round_trips() {
        for name in SpanPhase::ALL {
            let phase = SpanPhase::from_str_opt(name).expect("known phase");
            assert_eq!(phase.as_str(), name);
        }
        assert_eq!(SpanPhase::from_str_opt("daydreaming"), None);
    }

    #[test]
    fn raw_time_is_encoded_only_when_present() {
        let kind = EventKind::SpanStarted {
            span: 9,
            parent: Some(4),
            phase: SpanPhase::SubtotalSend,
        };
        let bare = Event::at(1.0, Some(2), kind.clone()).to_json_line();
        assert!(!bare.contains("raw_time_s"));
        let aligned = Event {
            time_s: 1.25,
            rank: Some(2),
            raw_time_s: Some(6.25),
            kind,
        }
        .to_json_line();
        assert!(aligned.contains("\"raw_time_s\":6.25"));
        assert!(aligned.contains("\"parent\":4"));
        assert!(aligned.contains("\"phase\":\"subtotal_send\""));
    }

    #[test]
    fn collector_activity_round_trips() {
        for a in [
            CollectorActivity::Computing,
            CollectorActivity::Receiving,
            CollectorActivity::Saving,
            CollectorActivity::Waiting,
        ] {
            assert_eq!(CollectorActivity::from_str_opt(a.as_str()), Some(a));
        }
        assert_eq!(CollectorActivity::from_str_opt("napping"), None);
    }
}
