//! `manaver [dir]` — manually averages the worker subtotal files left
//! by a terminated job (paper Section 3.4).

use std::process::ExitCode;

use parmonc_cli::{exit_code_for, parse_manaver_args};

fn main() -> ExitCode {
    let args = match parse_manaver_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match parmonc::manaver::manaver(&args.dir) {
        Ok(report) => {
            println!(
                "manaver: folded {} worker files, recovered {} realizations",
                report.workers_found, report.recovered_volume
            );
            println!(
                "total sample volume = {}, eps_max = {:.6e}, rho_max = {:.4}%",
                report.total_volume, report.summary.eps_max, report.summary.rho_max
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("manaver: {e}");
            ExitCode::from(exit_code_for(&e))
        }
    }
}
