//! `parmonc-demo <pi|transport|queue> [volume] [processors] [dir]
//! [--monitor] [--transport threads|processes|tcp] [--listen host:port]
//! [--join host:port]` — runs a bundled workload through the full
//! PARMONC pipeline and prints the averaged results; with `--monitor`,
//! also records a run trace and prints the monitor summary table.
//! `--transport processes` runs the workers as separate OS processes
//! over Unix-domain sockets instead of threads. `--listen` starts a
//! TCP collector waiting for remote workers, and `--join` runs this
//! process as one such worker (started with the same positional
//! arguments, so both sides agree on the configuration; see
//! `docs/cluster.md`). `--resume-listen` restarts a *crashed* TCP
//! collector: the session epoch and lease table are reloaded from the
//! output directory and the surviving workers rejoin with their ranks
//! intact (runbook in `docs/cluster.md`). `--tree <arity>` collects
//! subtotals over a k-ary reduction tree instead of the default
//! rank-0 star; every side of a TCP run must pass the same value.

use std::process::ExitCode;

use parmonc::prelude::{NetOptions, Parmonc, ParmoncBuilder, ParmoncError, RunReport, Topology};
use parmonc_apps::{MM1Queue, PiEstimator, SlabTransport};
use parmonc_cli::{exit_code_for, parse_demo_args, DemoArgs, DemoWorkload};

fn builder_for(args: &DemoArgs, ncol: usize) -> ParmoncBuilder {
    let mut b = Parmonc::builder(1, ncol)
        .max_sample_volume(args.volume)
        .processors(args.processors)
        .transport(args.transport)
        .output_dir(&args.dir);
    if let Some(addr) = &args.listen {
        b = b.net(NetOptions::listen(addr.clone()));
    }
    if let Some(addr) = &args.join {
        b = b.net(NetOptions::join(addr.clone()));
    }
    if let Some(addr) = &args.resume_listen {
        b = b.net(NetOptions::resume_listen(addr.clone()));
    }
    if let Some(arity) = args.tree_arity {
        b = b.topology(Topology::Tree { arity });
    }
    if args.monitor {
        b = b.monitor();
    }
    if args.spans {
        b = b.trace_spans();
    }
    if args.skew_s != 0.0 {
        b = b.clock_skew(args.skew_s);
    }
    b
}

fn run(args: &DemoArgs) -> Result<(RunReport, Vec<&'static str>), ParmoncError> {
    let builder = |ncol: usize| builder_for(args, ncol);
    match args.workload {
        DemoWorkload::Pi => Ok((builder(1).run(PiEstimator)?, vec!["pi"])),
        DemoWorkload::Transport => Ok((
            builder(3).run(SlabTransport::new(2.0, 1.0, 0.3))?,
            vec!["P(transmit)", "P(reflect)", "P(absorb)"],
        )),
        DemoWorkload::Queue => Ok((
            builder(2).run(MM1Queue::new(0.5, 1.0, 5_000, 500))?,
            vec!["E[wait]", "P(delayed)"],
        )),
    }
}

fn run_worker(args: &DemoArgs) -> Result<(), ParmoncError> {
    let builder = |ncol: usize| builder_for(args, ncol);
    match args.workload {
        DemoWorkload::Pi => builder(1).run_worker(PiEstimator),
        DemoWorkload::Transport => builder(3).run_worker(SlabTransport::new(2.0, 1.0, 0.3)),
        DemoWorkload::Queue => builder(2).run_worker(MM1Queue::new(0.5, 1.0, 5_000, 500)),
    }
}

fn main() -> ExitCode {
    let args = match parse_demo_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.join.is_some() {
        return match run_worker(&args) {
            Ok(()) => {
                println!("worker done");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("parmonc-demo worker: {e}");
                ExitCode::from(exit_code_for(&e))
            }
        };
    }
    match run(&args) {
        Ok((report, labels)) => {
            println!(
                "L = {} realizations on {} processors in {:.2?} (tau = {:.3e} s)",
                report.total_volume,
                report.processors,
                report.elapsed,
                report.mean_time_per_realization
            );
            for (j, label) in labels.iter().enumerate() {
                println!(
                    "{label:>12} = {:.6} ± {:.6} ({:.3}%)",
                    report.summary.means[j],
                    report.summary.abs_errors[j],
                    report.summary.rel_errors_percent[j]
                );
            }
            println!("results in {}", report.results_dir.root().display());
            if let Some(summary) = &report.monitor {
                println!();
                println!("{}", summary.render_table());
                println!(
                    "event trace in {}",
                    report.results_dir.run_metrics_path().display()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("parmonc-demo: {e}");
            ExitCode::from(exit_code_for(&e))
        }
    }
}
