//! `parmonc-trace <summary|quantiles|convergence|timeline|critical-path>
//! <trace.jsonl>` / `parmonc-trace compare <run-a.jsonl> <run-b.jsonl>`
//! — post-hoc analysis of monitor event traces. Every line is
//! schema-validated before analysis; an invalid trace exits with code 3
//! and `compare` exits with code 4 when the runs disagree.

use std::path::Path;
use std::process::ExitCode;

use parmonc_cli::{
    compare_traces, parse_trace_args, read_trace, trace_convergence, trace_critical_path,
    trace_exit_code, trace_quantiles, trace_summary, trace_timeline, TraceCommand,
    TRACE_MISMATCH_EXIT,
};

fn load(path: &Path) -> Result<Vec<parmonc_obs::Event>, ExitCode> {
    read_trace(path).map_err(|e| {
        eprintln!("parmonc-trace: {e}");
        ExitCode::from(trace_exit_code(&e))
    })
}

fn run() -> Result<ExitCode, ExitCode> {
    let cmd = parse_trace_args(std::env::args().skip(1)).map_err(|msg| {
        eprintln!("{msg}");
        ExitCode::FAILURE
    })?;
    match cmd {
        TraceCommand::Summary { trace } => print!("{}", trace_summary(&load(&trace)?)),
        TraceCommand::Quantiles { trace } => print!("{}", trace_quantiles(&load(&trace)?)),
        TraceCommand::Convergence { trace } => print!("{}", trace_convergence(&load(&trace)?)),
        TraceCommand::Timeline { trace } => print!("{}", trace_timeline(&load(&trace)?)),
        TraceCommand::CriticalPath { trace } => {
            print!("{}", trace_critical_path(&load(&trace)?).report);
        }
        TraceCommand::Compare { a, b } => {
            let cmp = compare_traces(&load(&a)?, &load(&b)?);
            print!("{}", cmp.report);
            if !cmp.matches {
                return Ok(ExitCode::from(TRACE_MISMATCH_EXIT));
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) | Err(code) => code,
    }
}
