//! `genparam ne np nr` — writes `parmonc_genparam.dat` into the
//! current working directory (paper Section 3.5).

use std::process::ExitCode;

use parmonc_cli::parse_genparam_args;

fn main() -> ExitCode {
    let args = match parse_genparam_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match parmonc::genparam::write_genparam(".", args.ne, args.np, args.nr) {
        Ok(config) => {
            println!(
                "wrote {}: ne = {}, np = {}, nr = {}",
                parmonc::genparam::GENPARAM_FILE,
                config.ne(),
                config.np(),
                config.nr()
            );
            println!(
                "capacities: {} experiments x {} processors x 2^{} realizations",
                config.experiments(),
                config.processors(),
                config.realizations_exponent()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("genparam: {e}");
            ExitCode::FAILURE
        }
    }
}
