//! Shared plumbing for the PARMONC command-line tools.
//!
//! The paper ships two stand-alone executables (Sections 3.4, 3.5):
//!
//! * `genparam ne np nr` — writes `parmonc_genparam.dat` with
//!   user-chosen leap exponents;
//! * `manaver` — re-averages the subtotal files of a terminated job.
//!
//! This crate provides their argument parsing as a library (so it is
//! testable) and the binaries as thin wrappers; it also ships
//! `parmonc-demo`, a small driver that runs the bundled workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::path::PathBuf;

use parmonc::ParmoncError;

/// Maps a runtime error to the tool's process exit code, so batch
/// scripts and schedulers can react to *why* a job failed — retry a
/// [`ParmoncError::WorkerLost`] run, restore from backup on a
/// [`ParmoncError::CorruptCheckpoint`], give up on bad configuration.
///
/// Code 0 is success and 1 is reserved for usage errors (bad command
/// line), so runtime failures start at 2:
///
/// | code | error |
/// |-----:|-------|
/// | 2 | invalid configuration |
/// | 3 | I/O failure |
/// | 4 | unparseable result file |
/// | 5 | nothing to resume |
/// | 6 | seqnum already used |
/// | 7 | no worker data to average |
/// | 8 | resume shape mismatch |
/// | 9 | corrupt checkpoint (primary and backup) |
/// | 10 | worker lost under `fail_on_worker_loss` |
/// | 11 | message-passing failure |
/// | 12 | other internal error |
#[must_use]
pub fn exit_code_for(err: &ParmoncError) -> u8 {
    match err {
        ParmoncError::Config(_) => 2,
        ParmoncError::Io { .. } => 3,
        ParmoncError::Parse { .. } => 4,
        ParmoncError::NothingToResume { .. } => 5,
        ParmoncError::SeqnumAlreadyUsed { .. } => 6,
        ParmoncError::NoWorkerData { .. } => 7,
        ParmoncError::ResumeShapeMismatch { .. } => 8,
        ParmoncError::CorruptCheckpoint { .. } => 9,
        ParmoncError::WorkerLost { .. } => 10,
        ParmoncError::Mpi(_) => 11,
        ParmoncError::Stats(_) | ParmoncError::Hierarchy(_) => 12,
    }
}

/// Parsed `genparam` arguments: the three leap exponents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenparamArgs {
    /// Exponent of the "experiments" leap.
    pub ne: u32,
    /// Exponent of the "processors" leap.
    pub np: u32,
    /// Exponent of the "realizations" leap.
    pub nr: u32,
}

/// Parses `genparam ne np nr`.
///
/// # Errors
///
/// Returns a usage string if the argument count or values are
/// malformed (range validation happens in
/// [`parmonc::genparam::write_genparam`]).
pub fn parse_genparam_args<I, S>(args: I) -> Result<GenparamArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    if values.len() != 3 {
        return Err(format!(
            "usage: genparam ne np nr   (got {} arguments)",
            values.len()
        ));
    }
    let parse = |name: &str, v: &str| -> Result<u32, String> {
        v.parse::<u32>()
            .map_err(|_| format!("{name} must be a non-negative integer, got {v:?}"))
    };
    Ok(GenparamArgs {
        ne: parse("ne", &values[0])?,
        np: parse("np", &values[1])?,
        nr: parse("nr", &values[2])?,
    })
}

/// Parsed `manaver` arguments: the working directory (defaults to
/// `.`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManaverArgs {
    /// Directory containing `parmonc_data/`.
    pub dir: PathBuf,
}

/// Parses `manaver [dir]`.
///
/// # Errors
///
/// Returns a usage string on more than one argument.
pub fn parse_manaver_args<I, S>(args: I) -> Result<ManaverArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    match values.len() {
        0 => Ok(ManaverArgs {
            dir: PathBuf::from("."),
        }),
        1 => Ok(ManaverArgs {
            dir: PathBuf::from(&values[0]),
        }),
        n => Err(format!("usage: manaver [dir]   (got {n} arguments)")),
    }
}

/// The demo workloads `parmonc-demo` can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoWorkload {
    /// π by rejection sampling.
    Pi,
    /// 1-D slab transport.
    Transport,
    /// M/M/1 queue.
    Queue,
}

/// Parsed `parmonc-demo` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct DemoArgs {
    /// Which workload.
    pub workload: DemoWorkload,
    /// Total sample volume.
    pub volume: u64,
    /// Processor count.
    pub processors: usize,
    /// Output directory.
    pub dir: PathBuf,
    /// Whether to record a run-monitor trace
    /// (`parmonc_data/monitor/run_metrics.jsonl`) and print the
    /// end-of-run summary table.
    pub monitor: bool,
}

/// Parses
/// `parmonc-demo <pi|transport|queue> [volume] [processors] [dir] [--monitor]`.
/// The `--monitor` flag may appear anywhere.
///
/// # Errors
///
/// Returns a usage string for unknown workloads or malformed numbers.
pub fn parse_demo_args<I, S>(args: I) -> Result<DemoArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    const USAGE: &str =
        "usage: parmonc-demo <pi|transport|queue> [volume] [processors] [dir] [--monitor]";
    let mut values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let before = values.len();
    values.retain(|v| v != "--monitor");
    let monitor = values.len() < before;
    let Some(first) = values.first() else {
        return Err(USAGE.to_string());
    };
    let workload = match first.as_str() {
        "pi" => DemoWorkload::Pi,
        "transport" => DemoWorkload::Transport,
        "queue" => DemoWorkload::Queue,
        other => return Err(format!("unknown workload {other:?}\n{USAGE}")),
    };
    let volume = match values.get(1) {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("volume must be an integer, got {v:?}"))?,
        None => 100_000,
    };
    let processors = match values.get(2) {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("processors must be an integer, got {v:?}"))?,
        None => 4,
    };
    let dir = values
        .get(3)
        .map_or_else(|| PathBuf::from("parmonc-demo-out"), PathBuf::from);
    Ok(DemoArgs {
        workload,
        volume,
        processors,
        dir,
        monitor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        let cases: Vec<(ParmoncError, u8)> = vec![
            (ParmoncError::Config("bad".into()), 2),
            (
                ParmoncError::NothingToResume {
                    dir: PathBuf::from("/tmp"),
                },
                5,
            ),
            (ParmoncError::SeqnumAlreadyUsed { seqnum: 3 }, 6),
            (
                ParmoncError::CorruptCheckpoint {
                    path: PathBuf::from("checkpoint.dat"),
                    reason: "bad checksum".into(),
                },
                9,
            ),
            (
                ParmoncError::WorkerLost {
                    rank: 2,
                    received_realizations: 10,
                },
                10,
            ),
        ];
        for (err, code) in &cases {
            assert_eq!(exit_code_for(err), *code, "{err}");
        }
        // Codes 0 (success) and 1 (usage) are never produced, and no
        // two runtime classes collide.
        let codes: std::collections::BTreeSet<u8> =
            cases.iter().map(|(e, _)| exit_code_for(e)).collect();
        assert_eq!(codes.len(), cases.len());
        assert!(codes.iter().all(|&c| c >= 2));
    }

    #[test]
    fn genparam_happy_path() {
        let a = parse_genparam_args(["115", "98", "43"]).unwrap();
        assert_eq!(
            a,
            GenparamArgs {
                ne: 115,
                np: 98,
                nr: 43
            }
        );
    }

    #[test]
    fn genparam_wrong_arity() {
        assert!(parse_genparam_args(["1", "2"])
            .unwrap_err()
            .contains("usage"));
        assert!(parse_genparam_args(["1", "2", "3", "4"]).is_err());
    }

    #[test]
    fn genparam_bad_number() {
        let err = parse_genparam_args(["x", "98", "43"]).unwrap_err();
        assert!(err.contains("ne"));
    }

    #[test]
    fn manaver_defaults_to_cwd() {
        assert_eq!(
            parse_manaver_args(Vec::<String>::new()).unwrap().dir,
            PathBuf::from(".")
        );
        assert_eq!(
            parse_manaver_args(["/tmp/run"]).unwrap().dir,
            PathBuf::from("/tmp/run")
        );
        assert!(parse_manaver_args(["a", "b"]).is_err());
    }

    #[test]
    fn demo_parsing() {
        let a = parse_demo_args(["pi"]).unwrap();
        assert_eq!(a.workload, DemoWorkload::Pi);
        assert_eq!(a.volume, 100_000);
        assert_eq!(a.processors, 4);
        assert!(!a.monitor);

        let a = parse_demo_args(["queue", "5000", "8", "/tmp/q"]).unwrap();
        assert_eq!(a.workload, DemoWorkload::Queue);
        assert_eq!(a.volume, 5000);
        assert_eq!(a.processors, 8);
        assert_eq!(a.dir, PathBuf::from("/tmp/q"));

        assert!(parse_demo_args(Vec::<String>::new()).is_err());
        assert!(parse_demo_args(["juggling"]).is_err());
        assert!(parse_demo_args(["pi", "lots"]).is_err());
    }

    #[test]
    fn demo_monitor_flag_anywhere() {
        for args in [
            vec!["pi", "--monitor"],
            vec!["--monitor", "pi"],
            vec!["pi", "1000", "--monitor", "2"],
        ] {
            let a = parse_demo_args(args).unwrap();
            assert!(a.monitor);
            assert_eq!(a.workload, DemoWorkload::Pi);
        }
        // The flag alone is not a workload.
        assert!(parse_demo_args(["--monitor"]).is_err());
    }
}
