//! Shared plumbing for the PARMONC command-line tools.
//!
//! The paper ships two stand-alone executables (Sections 3.4, 3.5):
//!
//! * `genparam ne np nr` — writes `parmonc_genparam.dat` with
//!   user-chosen leap exponents;
//! * `manaver` — re-averages the subtotal files of a terminated job.
//!
//! This crate provides their argument parsing as a library (so it is
//! testable) and the binaries as thin wrappers; it also ships
//! `parmonc-demo`, a small driver that runs the bundled workloads, and
//! `parmonc-trace`, a post-hoc analyzer for monitor jsonl traces
//! (summary, histogram quantiles, convergence trajectories, and
//! run-to-run comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use parmonc::{ParmoncError, Transport};
use parmonc_obs::{Event, EventKind, EventSink, MetricsSink, MonitorSummary, SpanPhase};

/// Maps a runtime error to the tool's process exit code, so batch
/// scripts and schedulers can react to *why* a job failed — retry a
/// [`ParmoncError::WorkerLost`] run, restore from backup on a
/// [`ParmoncError::CorruptCheckpoint`], give up on bad configuration.
///
/// Code 0 is success and 1 is reserved for usage errors (bad command
/// line), so runtime failures start at 2:
///
/// | code | error |
/// |-----:|-------|
/// | 2 | invalid configuration |
/// | 3 | I/O failure |
/// | 4 | unparseable result file |
/// | 5 | nothing to resume |
/// | 6 | seqnum already used |
/// | 7 | no worker data to average |
/// | 8 | resume shape mismatch |
/// | 9 | corrupt checkpoint (primary and backup) |
/// | 10 | worker lost under `fail_on_worker_loss` |
/// | 11 | message-passing failure |
/// | 12 | other internal error |
/// | 13 | collector crashed (scripted); restart with `--resume-listen` |
#[must_use]
pub fn exit_code_for(err: &ParmoncError) -> u8 {
    match err {
        ParmoncError::Config(_) => 2,
        ParmoncError::Io { .. } => 3,
        ParmoncError::Parse { .. } => 4,
        ParmoncError::NothingToResume { .. } => 5,
        ParmoncError::SeqnumAlreadyUsed { .. } => 6,
        ParmoncError::NoWorkerData { .. } => 7,
        ParmoncError::ResumeShapeMismatch { .. } => 8,
        ParmoncError::CorruptCheckpoint { .. } => 9,
        ParmoncError::WorkerLost { .. } => 10,
        ParmoncError::Mpi(_) => 11,
        ParmoncError::Stats(_) | ParmoncError::Hierarchy(_) => 12,
        ParmoncError::CollectorCrashed { .. } => 13,
    }
}

/// Parsed `genparam` arguments: the three leap exponents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenparamArgs {
    /// Exponent of the "experiments" leap.
    pub ne: u32,
    /// Exponent of the "processors" leap.
    pub np: u32,
    /// Exponent of the "realizations" leap.
    pub nr: u32,
}

/// Parses `genparam ne np nr`.
///
/// # Errors
///
/// Returns a usage string if the argument count or values are
/// malformed (range validation happens in
/// [`parmonc::genparam::write_genparam`]).
pub fn parse_genparam_args<I, S>(args: I) -> Result<GenparamArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    if values.len() != 3 {
        return Err(format!(
            "usage: genparam ne np nr   (got {} arguments)",
            values.len()
        ));
    }
    let parse = |name: &str, v: &str| -> Result<u32, String> {
        v.parse::<u32>()
            .map_err(|_| format!("{name} must be a non-negative integer, got {v:?}"))
    };
    Ok(GenparamArgs {
        ne: parse("ne", &values[0])?,
        np: parse("np", &values[1])?,
        nr: parse("nr", &values[2])?,
    })
}

/// Parsed `manaver` arguments: the working directory (defaults to
/// `.`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManaverArgs {
    /// Directory containing `parmonc_data/`.
    pub dir: PathBuf,
}

/// Parses `manaver [dir]`.
///
/// # Errors
///
/// Returns a usage string on more than one argument.
pub fn parse_manaver_args<I, S>(args: I) -> Result<ManaverArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    match values.len() {
        0 => Ok(ManaverArgs {
            dir: PathBuf::from("."),
        }),
        1 => Ok(ManaverArgs {
            dir: PathBuf::from(&values[0]),
        }),
        n => Err(format!("usage: manaver [dir]   (got {n} arguments)")),
    }
}

/// The demo workloads `parmonc-demo` can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoWorkload {
    /// π by rejection sampling.
    Pi,
    /// 1-D slab transport.
    Transport,
    /// M/M/1 queue.
    Queue,
}

/// Parsed `parmonc-demo` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct DemoArgs {
    /// Which workload.
    pub workload: DemoWorkload,
    /// Total sample volume.
    pub volume: u64,
    /// Processor count.
    pub processors: usize,
    /// Output directory.
    pub dir: PathBuf,
    /// Whether to record a run-monitor trace
    /// (`parmonc_data/monitor/run_metrics.jsonl`) and print the
    /// end-of-run summary table.
    pub monitor: bool,
    /// Which message-passing substrate carries the run
    /// (`--transport threads|processes|tcp`, default threads).
    pub transport: Transport,
    /// TCP collector mode: the address to listen on (`--listen`).
    /// Implies `--transport tcp`.
    pub listen: Option<String>,
    /// TCP worker mode: the collector address to dial (`--join`).
    /// Implies `--transport tcp`; the process runs the worker loop
    /// instead of a full collector run.
    pub join: Option<String>,
    /// TCP collector crash-resume: re-listen on this address and
    /// resume the crashed session from the persisted lease table and
    /// last save-point (`--resume-listen`). Implies `--transport tcp`.
    pub resume_listen: Option<String>,
    /// Whether to record causal tracing spans (`--spans`; implies
    /// `--monitor` on the collector side) for `parmonc-trace timeline`
    /// and `critical-path`.
    pub spans: bool,
    /// Deterministic clock skew (seconds) injected into this worker's
    /// monitor timestamps (`--skew-s`; TCP worker mode only) to
    /// exercise the clock-alignment plane.
    pub skew_s: f64,
    /// Collection topology: `--tree <arity>` collects subtotals over a
    /// k-ary reduction tree instead of the default rank-0 star. All
    /// sides of a TCP run must agree (the shape is handshake-checked).
    pub tree_arity: Option<usize>,
}

/// Parses
/// `parmonc-demo <pi|transport|queue> [volume] [processors] [dir] [--monitor]
/// [--transport threads|processes|tcp] [--listen host:port]
/// [--join host:port]`. The flags may appear anywhere; `--listen` and
/// `--join` each imply `--transport tcp` (collector and worker mode
/// respectively; see `docs/cluster.md`).
///
/// The hidden `--parmonc-worker` re-execution marker (appended by the
/// process transport when it self-execs workers) is stripped before
/// parsing, so a worker re-parse sees the same positional arguments as
/// the parent.
///
/// # Errors
///
/// Returns a usage string for unknown workloads or malformed numbers.
pub fn parse_demo_args<I, S>(args: I) -> Result<DemoArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    const USAGE: &str = "usage: parmonc-demo <pi|transport|queue> [volume] [processors] [dir] \
                         [--monitor] [--spans] [--transport threads|processes|tcp] \
                         [--listen host:port] [--join host:port] [--resume-listen host:port] \
                         [--skew-s seconds] [--tree arity]";
    let mut values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    values.retain(|v| v != parmonc::ipc::WORKER_FLAG);
    let mut transport = Transport::Threads;
    while let Some(pos) = values.iter().position(|v| v == "--transport") {
        let Some(choice) = values.get(pos + 1) else {
            return Err(format!("--transport requires a value\n{USAGE}"));
        };
        transport = match choice.as_str() {
            "threads" => Transport::Threads,
            "processes" => Transport::Processes,
            "tcp" => Transport::Tcp,
            other => {
                return Err(format!(
                    "unknown transport {other:?} (expected threads, processes, or tcp)\n{USAGE}"
                ))
            }
        };
        values.drain(pos..=pos + 1);
    }
    let mut addr_flag = |flag: &str| -> Result<Option<String>, String> {
        let mut addr = None;
        while let Some(pos) = values.iter().position(|v| v == flag) {
            let Some(value) = values.get(pos + 1) else {
                return Err(format!("{flag} requires an address\n{USAGE}"));
            };
            addr = Some(value.clone());
            values.drain(pos..=pos + 1);
        }
        Ok(addr)
    };
    let listen = addr_flag("--listen")?;
    let join = addr_flag("--join")?;
    let resume_listen = addr_flag("--resume-listen")?;
    if [&listen, &join, &resume_listen]
        .iter()
        .filter(|a| a.is_some())
        .count()
        > 1
    {
        return Err(format!(
            "--listen (collector), --join (worker), and --resume-listen (collector restart) \
             are mutually exclusive\n{USAGE}"
        ));
    }
    if listen.is_some() || join.is_some() || resume_listen.is_some() {
        transport = Transport::Tcp;
    } else if transport == Transport::Tcp {
        return Err(format!(
            "--transport tcp needs --listen (collector), --join (worker), or --resume-listen \
             (collector restart)\n{USAGE}"
        ));
    }
    let mut tree_arity = None;
    while let Some(pos) = values.iter().position(|v| v == "--tree") {
        let Some(value) = values.get(pos + 1) else {
            return Err(format!("--tree requires an arity\n{USAGE}"));
        };
        let arity = value
            .parse::<usize>()
            .map_err(|_| format!("--tree arity must be an integer, got {value:?}"))?;
        if arity == 0 {
            return Err(format!("--tree arity must be at least 1\n{USAGE}"));
        }
        tree_arity = Some(arity);
        values.drain(pos..=pos + 1);
    }
    let mut skew_s = 0.0f64;
    while let Some(pos) = values.iter().position(|v| v == "--skew-s") {
        let Some(value) = values.get(pos + 1) else {
            return Err(format!("--skew-s requires a value in seconds\n{USAGE}"));
        };
        skew_s = value
            .parse::<f64>()
            .map_err(|_| format!("--skew-s must be a number of seconds, got {value:?}"))?;
        values.drain(pos..=pos + 1);
    }
    let before = values.len();
    values.retain(|v| v != "--monitor");
    let monitor = values.len() < before;
    let before = values.len();
    values.retain(|v| v != "--spans");
    let spans = values.len() < before;
    // Spans are monitor events; asking for them is asking for the
    // monitor.
    let monitor = monitor || spans;
    let Some(first) = values.first() else {
        return Err(USAGE.to_string());
    };
    let workload = match first.as_str() {
        "pi" => DemoWorkload::Pi,
        "transport" => DemoWorkload::Transport,
        "queue" => DemoWorkload::Queue,
        other => return Err(format!("unknown workload {other:?}\n{USAGE}")),
    };
    let volume = match values.get(1) {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("volume must be an integer, got {v:?}"))?,
        None => 100_000,
    };
    let processors = match values.get(2) {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("processors must be an integer, got {v:?}"))?,
        None => 4,
    };
    let dir = values
        .get(3)
        .map_or_else(|| PathBuf::from("parmonc-demo-out"), PathBuf::from);
    Ok(DemoArgs {
        workload,
        volume,
        processors,
        dir,
        monitor,
        transport,
        listen,
        join,
        resume_listen,
        spans,
        skew_s,
        tree_arity,
    })
}

/// A `parmonc-trace` subcommand, parsed by [`parse_trace_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCommand {
    /// Fold the trace into the end-of-run summary table.
    Summary {
        /// Path of the jsonl trace.
        trace: PathBuf,
    },
    /// Replay the trace through the metrics plane and print the
    /// quantiles of every derived histogram.
    Quantiles {
        /// Path of the jsonl trace.
        trace: PathBuf,
    },
    /// Print the `(n, mean, err)` error-bar trajectory of every tracked
    /// functional.
    Convergence {
        /// Path of the jsonl trace.
        trace: PathBuf,
    },
    /// Compare two traces: event vocabulary and final estimates.
    Compare {
        /// First trace.
        a: PathBuf,
        /// Second trace.
        b: PathBuf,
    },
    /// Reconstruct the per-rank span timeline (a Gantt view over the
    /// corrected run clock) from `span_started`/`span_ended` events.
    Timeline {
        /// Path of the jsonl trace.
        trace: PathBuf,
    },
    /// Walk the span graph backwards from the outcome and print the
    /// dependency-ordered critical path: which rank and phase the run
    /// spent its wall time on.
    CriticalPath {
        /// Path of the jsonl trace.
        trace: PathBuf,
    },
}

/// Parses
/// `parmonc-trace <summary|quantiles|convergence> <trace.jsonl>` or
/// `parmonc-trace compare <run-a.jsonl> <run-b.jsonl>`.
///
/// # Errors
///
/// Returns a usage string on unknown subcommands or wrong arity.
pub fn parse_trace_args<I, S>(args: I) -> Result<TraceCommand, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    const USAGE: &str =
        "usage: parmonc-trace <summary|quantiles|convergence|timeline|critical-path> \
         <trace.jsonl>\n\
         \u{20}      parmonc-trace compare <run-a.jsonl> <run-b.jsonl>";
    let values: Vec<String> = args.into_iter().map(|s| s.as_ref().to_string()).collect();
    let Some(cmd) = values.first() else {
        return Err(USAGE.to_string());
    };
    let one = |name: &str| -> Result<PathBuf, String> {
        match values.len() {
            2 => Ok(PathBuf::from(&values[1])),
            n => Err(format!(
                "{name} takes exactly one trace file (got {} arguments)\n{USAGE}",
                n - 1
            )),
        }
    };
    match cmd.as_str() {
        "summary" => Ok(TraceCommand::Summary {
            trace: one("summary")?,
        }),
        "quantiles" => Ok(TraceCommand::Quantiles {
            trace: one("quantiles")?,
        }),
        "convergence" => Ok(TraceCommand::Convergence {
            trace: one("convergence")?,
        }),
        "timeline" => Ok(TraceCommand::Timeline {
            trace: one("timeline")?,
        }),
        "critical-path" => Ok(TraceCommand::CriticalPath {
            trace: one("critical-path")?,
        }),
        "compare" => match values.len() {
            3 => Ok(TraceCommand::Compare {
                a: PathBuf::from(&values[1]),
                b: PathBuf::from(&values[2]),
            }),
            n => Err(format!(
                "compare takes exactly two trace files (got {} arguments)\n{USAGE}",
                n - 1
            )),
        },
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

/// A failure while loading a monitor trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// A line failed schema validation (the trace is corrupt or from an
    /// incompatible producer) — `parmonc-trace` refuses to analyze it.
    InvalidLine {
        /// The offending path.
        path: PathBuf,
        /// 1-based line number.
        line_no: usize,
        /// The validator's diagnosis.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "reading {}: {message}", path.display()),
            Self::InvalidLine {
                path,
                line_no,
                message,
            } => write!(
                f,
                "{}:{line_no}: invalid trace line: {message}",
                path.display()
            ),
        }
    }
}

/// Process exit code for a [`TraceError`]: 2 for I/O failures, 3 for
/// schema-invalid traces (0 is success, 1 is reserved for usage
/// errors, 4 for a [`compare_traces`] mismatch).
#[must_use]
pub fn trace_exit_code(err: &TraceError) -> u8 {
    match err {
        TraceError::Io { .. } => 2,
        TraceError::InvalidLine { .. } => 3,
    }
}

/// Exit code of `parmonc-trace compare` when the traces differ.
pub const TRACE_MISMATCH_EXIT: u8 = 4;

/// Reads a monitor jsonl trace, validating every line against the
/// documented schema.
///
/// # Errors
///
/// [`TraceError::Io`] if the file cannot be read, or
/// [`TraceError::InvalidLine`] (with a 1-based line number) on the
/// first schema violation.
pub fn read_trace(path: &Path) -> Result<Vec<Event>, TraceError> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            parmonc_obs::schema::parse_line(line).map_err(|message| TraceError::InvalidLine {
                path: path.to_path_buf(),
                line_no: i + 1,
                message,
            })
        })
        .collect()
}

/// `parmonc-trace summary`: folds the events into the same table a
/// monitored run prints at exit.
#[must_use]
pub fn trace_summary(events: &[Event]) -> String {
    let mut out = format!("{} events\n", events.len());
    out.push_str(&MonitorSummary::from_events(events).render_table());
    out
}

/// `parmonc-trace quantiles`: replays the trace through the metrics
/// plane ([`MetricsSink`]) and tabulates every derived histogram's
/// p50/p90/p99 (quantiles carry the documented ≤ 5 % relative error of
/// the log-bucketed scheme).
#[must_use]
pub fn trace_quantiles(events: &[Event]) -> String {
    let sink = MetricsSink::new();
    for event in events {
        sink.record(event);
    }
    let registry = sink.registry();
    let names = registry.histogram_names();
    if names.is_empty() {
        return "no histogram samples in trace\n".to_string();
    }
    let mut out = format!(
        "{:<42} {:>8} {:>11} {:>11} {:>11} {:>11}\n",
        "histogram", "count", "p50", "p90", "p99", "max"
    );
    for name in names {
        let h = registry.histogram(&name).expect("name came from registry");
        let q = |p: f64| {
            h.quantile(p)
                .map_or_else(|| "-".to_string(), |v| format!("{v:.4e}"))
        };
        let _ = writeln!(
            out,
            "{name:<42} {:>8} {:>11} {:>11} {:>11} {:>11}",
            h.count(),
            q(0.50),
            q(0.90),
            q(0.99),
            h.max()
                .map_or_else(|| "-".to_string(), |v| format!("{v:.4e}")),
        );
    }
    out
}

/// The last recorded `(n, mean, err)` of each functional in a trace;
/// `mean`/`err` are `None` for producers that report cadence without
/// values (the cluster simulator).
type FinalEstimates = BTreeMap<u64, (u64, Option<f64>, Option<f64>)>;

/// Per-functional `(n, mean, err)` history, in trace order.
type Trajectories = BTreeMap<u64, Vec<(u64, Option<f64>, Option<f64>)>>;

fn final_estimates(events: &[Event]) -> FinalEstimates {
    let mut last = FinalEstimates::new();
    for event in events {
        if let EventKind::MetricsSnapshot {
            functional,
            n,
            mean,
            err,
        } = event.kind
        {
            last.insert(functional, (n, mean, err));
        }
    }
    last
}

/// `parmonc-trace convergence`: the `(n, mean, err)` trajectory of
/// every functional that appears in `metrics_snapshot` events, plus the
/// `target_precision_reached` declaration when present.
#[must_use]
pub fn trace_convergence(events: &[Event]) -> String {
    let mut trajectories = Trajectories::new();
    let mut target: Option<(u64, f64, f64)> = None;
    for event in events {
        match event.kind {
            EventKind::MetricsSnapshot {
                functional,
                n,
                mean,
                err,
            } => trajectories
                .entry(functional)
                .or_default()
                .push((n, mean, err)),
            EventKind::TargetPrecisionReached {
                n,
                eps_max,
                target: t,
            } => {
                target = Some((n, eps_max, t));
            }
            _ => {}
        }
    }
    if trajectories.is_empty() {
        return "no metrics_snapshot events in trace\n".to_string();
    }
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.6e}"));
    let mut out = String::new();
    for (functional, points) in &trajectories {
        let _ = writeln!(
            out,
            "functional {functional} ({} observations)",
            points.len()
        );
        let _ = writeln!(out, "  {:>12} {:>14} {:>14}", "n", "mean", "err");
        for (n, mean, err) in points {
            let _ = writeln!(out, "  {n:>12} {:>14} {:>14}", fmt(*mean), fmt(*err));
        }
    }
    match target {
        Some((n, eps_max, t)) => {
            let _ = writeln!(
                out,
                "target precision reached at n {n} (eps_max {eps_max:.3e} <= target {t:.3e})"
            );
        }
        None => out.push_str("no precision target declared\n"),
    }
    out
}

/// The outcome of [`compare_traces`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceComparison {
    /// Human-readable comparison report.
    pub report: String,
    /// Whether the traces agree (same vocabulary, same final volume,
    /// consistent final estimates).
    pub matches: bool,
}

/// `parmonc-trace compare`: checks that two runs of the same experiment
/// speak the same event vocabulary and agree on the outcome — equal
/// final realization counts, and final per-functional estimates
/// consistent within their combined error bars (skipped when a side
/// carries cadence-only snapshots, as simulator traces do).
#[must_use]
pub fn compare_traces(a: &[Event], b: &[Event]) -> TraceComparison {
    let mut report = String::new();
    let mut matches = true;

    let kinds = |events: &[Event]| -> BTreeSet<&'static str> {
        events.iter().map(|e| e.kind.name()).collect()
    };
    let (ka, kb) = (kinds(a), kinds(b));
    if ka == kb {
        let _ = writeln!(report, "event kinds: identical ({} kinds)", ka.len());
    } else {
        matches = false;
        let only_a: Vec<_> = ka.difference(&kb).copied().collect();
        let only_b: Vec<_> = kb.difference(&ka).copied().collect();
        let _ = writeln!(
            report,
            "event kinds differ: only in a: {only_a:?}, only in b: {only_b:?}"
        );
    }

    let completed = |events: &[Event]| {
        events.iter().rev().find_map(|e| match e.kind {
            EventKind::RunCompleted { realizations, .. } => Some(realizations),
            _ => None,
        })
    };
    match (completed(a), completed(b)) {
        (Some(va), Some(vb)) if va == vb => {
            let _ = writeln!(report, "final realizations: {va} == {vb}");
        }
        (Some(va), Some(vb)) => {
            matches = false;
            let _ = writeln!(report, "final realizations differ: {va} vs {vb}");
        }
        (va, vb) => {
            matches = false;
            let _ = writeln!(
                report,
                "run_completed missing: a: {va:?}, b: {vb:?} (truncated trace?)"
            );
        }
    }

    let (ea, eb) = (final_estimates(a), final_estimates(b));
    let mut compared = 0usize;
    for (functional, (na, ma, erra)) in &ea {
        let Some((nb, mb, errb)) = eb.get(functional) else {
            continue;
        };
        let (Some(ma), Some(mb)) = (ma, mb) else {
            continue;
        };
        compared += 1;
        let bar = erra.unwrap_or(0.0) + errb.unwrap_or(0.0);
        if (ma - mb).abs() <= bar {
            let _ = writeln!(
                report,
                "functional {functional}: {ma:.6e} (n {na}) vs {mb:.6e} (n {nb}) — consistent within ± {bar:.3e}"
            );
        } else {
            matches = false;
            let _ = writeln!(
                report,
                "functional {functional}: {ma:.6e} vs {mb:.6e} exceeds combined error bar {bar:.3e}"
            );
        }
    }
    if compared == 0 {
        report.push_str(
            "final estimate values absent from at least one trace; volumes compared only\n",
        );
    }

    report.push_str(if matches {
        "traces match\n"
    } else {
        "traces differ\n"
    });
    TraceComparison { report, matches }
}

/// One completed span recovered from a trace: who did what, when, on
/// the collector's corrected run clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedSpan {
    /// Emitting rank (span events always carry one).
    pub rank: usize,
    /// The phase the span brackets.
    pub phase: SpanPhase,
    /// Start, seconds on the corrected run clock.
    pub start_s: f64,
    /// End, seconds on the corrected run clock.
    pub end_s: f64,
}

/// Pairs `span_started`/`span_ended` events into closed spans. Returns
/// the closed spans (trace order) and the count of spans that never
/// closed (a crashed rank, or a truncated trace).
#[must_use]
pub fn closed_spans(events: &[Event]) -> (Vec<ClosedSpan>, usize) {
    let mut open: BTreeMap<u64, (usize, SpanPhase, f64)> = BTreeMap::new();
    let mut closed = Vec::new();
    for event in events {
        match event.kind {
            EventKind::SpanStarted { span, phase, .. } => {
                open.insert(span, (event.rank.unwrap_or(0), phase, event.time_s));
            }
            EventKind::SpanEnded { span, .. } => {
                if let Some((rank, phase, start_s)) = open.remove(&span) {
                    closed.push(ClosedSpan {
                        rank,
                        phase,
                        start_s,
                        // A skew-corrected stream can place an end a
                        // hair before its start; clamp so durations
                        // never go negative.
                        end_s: event.time_s.max(start_s),
                    });
                }
            }
            _ => {}
        }
    }
    (closed, open.len())
}

/// `parmonc-trace timeline`: a per-rank Gantt view of the span stream.
/// Every rank gets its closed spans in start order, each with a bar
/// positioned on the shared corrected run clock, so cross-host phases
/// line up visually.
#[must_use]
pub fn trace_timeline(events: &[Event]) -> String {
    let (spans, unclosed) = closed_spans(events);
    if spans.is_empty() {
        return "no spans in trace (run with span tracing enabled to record them)\n".to_string();
    }
    let t_min = spans
        .iter()
        .map(|s| s.start_s)
        .fold(f64::INFINITY, f64::min);
    let t_max = spans
        .iter()
        .map(|s| s.end_s)
        .fold(f64::NEG_INFINITY, f64::max);
    let range = (t_max - t_min).max(f64::MIN_POSITIVE);
    const WIDTH: usize = 40;
    let mut by_rank: BTreeMap<usize, Vec<&ClosedSpan>> = BTreeMap::new();
    for span in &spans {
        by_rank.entry(span.rank).or_default().push(span);
    }
    let mut out = format!(
        "{} spans across {} ranks, window {t_min:.3}s .. {t_max:.3}s\n",
        spans.len(),
        by_rank.len()
    );
    if unclosed > 0 {
        let _ = writeln!(out, "WARNING: {unclosed} spans never closed");
    }
    for (rank, mut rank_spans) in by_rank {
        rank_spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        let _ = writeln!(out, "rank {rank}");
        for span in rank_spans {
            let from = (((span.start_s - t_min) / range) * WIDTH as f64) as usize;
            let to = (((span.end_s - t_min) / range) * WIDTH as f64).ceil() as usize;
            let (from, to) = (from.min(WIDTH - 1), to.clamp(from + 1, WIDTH));
            let bar: String = (0..WIDTH)
                .map(|i| if i >= from && i < to { '#' } else { '.' })
                .collect();
            let _ = writeln!(
                out,
                "  {:<18} {:>9.3}s {:>9.3}s {:>9.3}s |{bar}|",
                span.phase.as_str(),
                span.start_s,
                span.end_s,
                span.end_s - span.start_s,
            );
        }
    }
    out
}

/// One step of a [`CriticalPathReport`], in forward time order. Steps
/// tile the window exactly: each starts where the previous ended.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathStep {
    /// The rank the step is attributed to; `None` for the pre-span
    /// startup stretch.
    pub rank: Option<usize>,
    /// The span phase, or a synthetic label (`"wait"` between spans,
    /// `"startup"` before the first).
    pub label: String,
    /// Step start, corrected run clock.
    pub start_s: f64,
    /// Step end, corrected run clock.
    pub end_s: f64,
}

/// The outcome of [`trace_critical_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathReport {
    /// The dependency-ordered steps from run start to the anchor.
    pub steps: Vec<CriticalPathStep>,
    /// Sum of the step durations.
    pub total_s: f64,
    /// The analyzed window: run start to the anchor event.
    pub wall_s: f64,
    /// Human-readable rendering.
    pub report: String,
}

/// `parmonc-trace critical-path`: walks the span stream *backwards*
/// from the run's outcome (`target_precision_reached` when present,
/// otherwise the last event) to the run start, at each point following
/// the span that was still in flight — the work the outcome was
/// actually waiting on. Stretches covered by no span are attributed to
/// `wait` (the collector idling on its inbox) or `startup`. The steps
/// tile the window exactly, so their sum equals the analyzed wall time
/// by construction — the interesting output is *where* that time went,
/// summarized per rank/phase with the dominant contributor named.
#[must_use]
pub fn trace_critical_path(events: &[Event]) -> CriticalPathReport {
    let (spans, _) = closed_spans(events);
    let run_start = events
        .iter()
        .find_map(|e| matches!(e.kind, EventKind::RunStarted { .. }).then_some(e.time_s))
        .unwrap_or_else(|| {
            events
                .iter()
                .map(|e| e.time_s)
                .fold(f64::INFINITY, f64::min)
        });
    let anchor = events
        .iter()
        .find_map(|e| {
            matches!(e.kind, EventKind::TargetPrecisionReached { .. }).then_some(e.time_s)
        })
        .unwrap_or_else(|| {
            events
                .iter()
                .map(|e| e.time_s)
                .fold(f64::NEG_INFINITY, f64::max)
        });
    // NaN timestamps must also land here, hence the partial_cmp form.
    let has_window = anchor.partial_cmp(&run_start) == Some(std::cmp::Ordering::Greater);
    if events.is_empty() || !has_window {
        return CriticalPathReport {
            steps: Vec::new(),
            total_s: 0.0,
            wall_s: 0.0,
            report: "trace has no analyzable window (empty or zero-length)\n".to_string(),
        };
    }

    let mut steps: Vec<CriticalPathStep> = Vec::new();
    let mut cursor = anchor;
    // Each iteration strictly lowers `cursor` (covering spans start
    // strictly before it; gap hops land on a strictly earlier end), so
    // the walk terminates; the cap is sheer paranoia against a
    // pathological trace.
    let mut budget = 2 * spans.len() + 16;
    while cursor > run_start && budget > 0 {
        budget -= 1;
        // The span in flight at `cursor` — latest-starting, so the
        // innermost (a subtotal_send wins over its realization_batch).
        let covering = spans
            .iter()
            .filter(|s| s.start_s < cursor && s.end_s >= cursor)
            .max_by(|a, b| a.start_s.total_cmp(&b.start_s));
        if let Some(span) = covering {
            let from = span.start_s.max(run_start);
            steps.push(CriticalPathStep {
                rank: Some(span.rank),
                label: span.phase.as_str().to_string(),
                start_s: from,
                end_s: cursor,
            });
            cursor = from;
            continue;
        }
        // Nothing in flight: hop to the nearest earlier completion and
        // book the gap as waiting (attributed to the collector, whose
        // inbox the run blocks on between spans).
        let earlier = spans
            .iter()
            .filter(|s| s.end_s < cursor)
            .max_by(|a, b| a.end_s.total_cmp(&b.end_s));
        match earlier {
            Some(span) if span.end_s > run_start => {
                steps.push(CriticalPathStep {
                    rank: Some(0),
                    label: "wait".to_string(),
                    start_s: span.end_s,
                    end_s: cursor,
                });
                cursor = span.end_s;
            }
            _ => {
                steps.push(CriticalPathStep {
                    rank: None,
                    label: "startup".to_string(),
                    start_s: run_start,
                    end_s: cursor,
                });
                cursor = run_start;
            }
        }
    }
    steps.reverse();

    let wall_s = anchor - run_start;
    let total_s: f64 = steps.iter().map(|s| s.end_s - s.start_s).sum();
    let mut by_owner: BTreeMap<String, f64> = BTreeMap::new();
    for step in &steps {
        let owner = match step.rank {
            Some(rank) => format!("rank {rank} {}", step.label),
            None => step.label.clone(),
        };
        *by_owner.entry(owner).or_default() += step.end_s - step.start_s;
    }
    let mut out = format!(
        "critical path: {} steps over {wall_s:.3}s (run start {run_start:.3}s -> anchor {anchor:.3}s)\n",
        steps.len()
    );
    for step in &steps {
        let _ = writeln!(
            out,
            "  {:>9.3}s .. {:>9.3}s {:>9.3}s  {}",
            step.start_s,
            step.end_s,
            step.end_s - step.start_s,
            match step.rank {
                Some(rank) => format!("rank {rank}  {}", step.label),
                None => step.label.clone(),
            },
        );
    }
    let _ = writeln!(out, "path total {total_s:.3}s of {wall_s:.3}s wall");
    if let Some((owner, seconds)) = by_owner
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, v)| (k.clone(), *v))
    {
        let _ = writeln!(
            out,
            "dominated by {owner}: {seconds:.3}s ({:.0}% of the window)",
            100.0 * seconds / wall_s
        );
    }
    CriticalPathReport {
        steps,
        total_s,
        wall_s,
        report: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        let cases: Vec<(ParmoncError, u8)> = vec![
            (ParmoncError::Config("bad".into()), 2),
            (
                ParmoncError::NothingToResume {
                    dir: PathBuf::from("/tmp"),
                },
                5,
            ),
            (ParmoncError::SeqnumAlreadyUsed { seqnum: 3 }, 6),
            (
                ParmoncError::CorruptCheckpoint {
                    path: PathBuf::from("checkpoint.dat"),
                    reason: "bad checksum".into(),
                },
                9,
            ),
            (
                ParmoncError::WorkerLost {
                    rank: 2,
                    received_realizations: 10,
                },
                10,
            ),
        ];
        for (err, code) in &cases {
            assert_eq!(exit_code_for(err), *code, "{err}");
        }
        // Codes 0 (success) and 1 (usage) are never produced, and no
        // two runtime classes collide.
        let codes: std::collections::BTreeSet<u8> =
            cases.iter().map(|(e, _)| exit_code_for(e)).collect();
        assert_eq!(codes.len(), cases.len());
        assert!(codes.iter().all(|&c| c >= 2));
    }

    #[test]
    fn genparam_happy_path() {
        let a = parse_genparam_args(["115", "98", "43"]).unwrap();
        assert_eq!(
            a,
            GenparamArgs {
                ne: 115,
                np: 98,
                nr: 43
            }
        );
    }

    #[test]
    fn genparam_wrong_arity() {
        assert!(parse_genparam_args(["1", "2"])
            .unwrap_err()
            .contains("usage"));
        assert!(parse_genparam_args(["1", "2", "3", "4"]).is_err());
    }

    #[test]
    fn genparam_bad_number() {
        let err = parse_genparam_args(["x", "98", "43"]).unwrap_err();
        assert!(err.contains("ne"));
    }

    #[test]
    fn manaver_defaults_to_cwd() {
        assert_eq!(
            parse_manaver_args(Vec::<String>::new()).unwrap().dir,
            PathBuf::from(".")
        );
        assert_eq!(
            parse_manaver_args(["/tmp/run"]).unwrap().dir,
            PathBuf::from("/tmp/run")
        );
        assert!(parse_manaver_args(["a", "b"]).is_err());
    }

    #[test]
    fn demo_parsing() {
        let a = parse_demo_args(["pi"]).unwrap();
        assert_eq!(a.workload, DemoWorkload::Pi);
        assert_eq!(a.volume, 100_000);
        assert_eq!(a.processors, 4);
        assert!(!a.monitor);

        let a = parse_demo_args(["queue", "5000", "8", "/tmp/q"]).unwrap();
        assert_eq!(a.workload, DemoWorkload::Queue);
        assert_eq!(a.volume, 5000);
        assert_eq!(a.processors, 8);
        assert_eq!(a.dir, PathBuf::from("/tmp/q"));

        assert!(parse_demo_args(Vec::<String>::new()).is_err());
        assert!(parse_demo_args(["juggling"]).is_err());
        assert!(parse_demo_args(["pi", "lots"]).is_err());
    }

    #[test]
    fn demo_monitor_flag_anywhere() {
        for args in [
            vec!["pi", "--monitor"],
            vec!["--monitor", "pi"],
            vec!["pi", "1000", "--monitor", "2"],
        ] {
            let a = parse_demo_args(args).unwrap();
            assert!(a.monitor);
            assert_eq!(a.workload, DemoWorkload::Pi);
        }
        // The flag alone is not a workload.
        assert!(parse_demo_args(["--monitor"]).is_err());
    }

    #[test]
    fn demo_spans_and_skew_flags() {
        let a = parse_demo_args(["pi"]).unwrap();
        assert!(!a.spans);
        assert_eq!(a.skew_s, 0.0);

        // --spans implies --monitor: spans are monitor events.
        let a = parse_demo_args(["pi", "--spans"]).unwrap();
        assert!(a.spans);
        assert!(a.monitor);

        let a = parse_demo_args(["--skew-s", "1.5", "pi", "1000", "2"]).unwrap();
        assert_eq!(a.skew_s, 1.5);
        assert_eq!(a.volume, 1000);
        assert!(parse_demo_args(["pi", "--skew-s"]).is_err());
        assert!(parse_demo_args(["pi", "--skew-s", "soon"]).is_err());
    }

    #[test]
    fn demo_tree_flag() {
        let a = parse_demo_args(["pi"]).unwrap();
        assert_eq!(a.tree_arity, None);

        let a = parse_demo_args(["--tree", "2", "pi", "1000", "7"]).unwrap();
        assert_eq!(a.tree_arity, Some(2));
        assert_eq!(a.processors, 7);

        assert!(parse_demo_args(["pi", "--tree"]).is_err());
        assert!(parse_demo_args(["pi", "--tree", "wide"]).is_err());
        assert!(parse_demo_args(["pi", "--tree", "0"]).is_err());
    }

    #[test]
    fn demo_transport_flag() {
        let a = parse_demo_args(["pi"]).unwrap();
        assert_eq!(a.transport, Transport::Threads);

        let a = parse_demo_args(["pi", "--transport", "processes"]).unwrap();
        assert_eq!(a.transport, Transport::Processes);

        // Anywhere, and positionals still line up around it.
        let a = parse_demo_args(["--transport", "threads", "queue", "5000", "8"]).unwrap();
        assert_eq!(a.transport, Transport::Threads);
        assert_eq!(a.workload, DemoWorkload::Queue);
        assert_eq!(a.volume, 5000);
        assert_eq!(a.processors, 8);

        assert!(parse_demo_args(["pi", "--transport"]).is_err());
        assert!(parse_demo_args(["pi", "--transport", "carrier-pigeon"]).is_err());
    }

    #[test]
    fn demo_tcp_flags() {
        // --listen selects TCP collector mode.
        let a = parse_demo_args(["pi", "--listen", "0.0.0.0:7070"]).unwrap();
        assert_eq!(a.transport, Transport::Tcp);
        assert_eq!(a.listen.as_deref(), Some("0.0.0.0:7070"));
        assert_eq!(a.join, None);

        // --join selects TCP worker mode, anywhere among positionals.
        let a = parse_demo_args(["--join", "collector:7070", "queue", "5000", "8"]).unwrap();
        assert_eq!(a.transport, Transport::Tcp);
        assert_eq!(a.join.as_deref(), Some("collector:7070"));
        assert_eq!(a.workload, DemoWorkload::Queue);
        assert_eq!(a.volume, 5000);
        assert_eq!(a.processors, 8);

        // Explicit --transport tcp is fine alongside an address.
        let a = parse_demo_args(["pi", "--transport", "tcp", "--listen", "127.0.0.1:0"]).unwrap();
        assert_eq!(a.transport, Transport::Tcp);

        // --resume-listen restarts a crashed collector session.
        let a = parse_demo_args(["pi", "--resume-listen", "0.0.0.0:7070"]).unwrap();
        assert_eq!(a.transport, Transport::Tcp);
        assert_eq!(a.resume_listen.as_deref(), Some("0.0.0.0:7070"));
        assert_eq!(a.listen, None);

        // ... but meaningless without one, and the three modes exclude
        // each other.
        assert!(parse_demo_args(["pi", "--transport", "tcp"]).is_err());
        assert!(parse_demo_args(["pi", "--listen"]).is_err());
        assert!(parse_demo_args(["pi", "--join"]).is_err());
        assert!(parse_demo_args(["pi", "--resume-listen"]).is_err());
        assert!(parse_demo_args(["pi", "--listen", "0.0.0.0:1", "--join", "h:1"]).is_err());
        assert!(
            parse_demo_args(["pi", "--listen", "0.0.0.0:1", "--resume-listen", "h:1"]).is_err()
        );
    }

    #[test]
    fn demo_strips_worker_marker() {
        // A re-executed worker sees the parent's argv plus the hidden
        // marker; parsing must come out identical.
        let a = parse_demo_args(["pi", "1000", "2", parmonc::ipc::WORKER_FLAG]).unwrap();
        let b = parse_demo_args(["pi", "1000", "2"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_arg_parsing() {
        assert_eq!(
            parse_trace_args(["summary", "t.jsonl"]).unwrap(),
            TraceCommand::Summary {
                trace: PathBuf::from("t.jsonl")
            }
        );
        assert_eq!(
            parse_trace_args(["compare", "a.jsonl", "b.jsonl"]).unwrap(),
            TraceCommand::Compare {
                a: PathBuf::from("a.jsonl"),
                b: PathBuf::from("b.jsonl"),
            }
        );
        assert_eq!(
            parse_trace_args(["timeline", "t.jsonl"]).unwrap(),
            TraceCommand::Timeline {
                trace: PathBuf::from("t.jsonl")
            }
        );
        assert_eq!(
            parse_trace_args(["critical-path", "t.jsonl"]).unwrap(),
            TraceCommand::CriticalPath {
                trace: PathBuf::from("t.jsonl")
            }
        );
        for bad in [
            vec![],
            vec!["summary"],
            vec!["summary", "a", "b"],
            vec!["compare", "a"],
            vec!["unknown", "t.jsonl"],
        ] {
            assert!(parse_trace_args(bad).unwrap_err().contains("usage"));
        }
    }

    /// A tiny synthetic but schema-complete trace of a 2-processor run.
    fn sample_events() -> Vec<Event> {
        use parmonc_obs::RunMode;
        let ev = Event::at;
        vec![
            ev(
                0.0,
                None,
                EventKind::RunStarted {
                    mode: RunMode::Threads,
                    processors: 2,
                    max_sample_volume: 100,
                    seqnum: Some(1),
                    nrow: Some(1),
                    ncol: Some(1),
                    transport: Some(parmonc_obs::RunTransport::Threads),
                },
            ),
            ev(
                0.5,
                Some(1),
                EventKind::Realizations {
                    completed: 50,
                    compute_seconds: 0.4,
                },
            ),
            ev(
                0.6,
                Some(1),
                EventKind::MessageSent {
                    dest: 0,
                    tag: 1,
                    bytes: 64,
                },
            ),
            ev(
                0.6,
                Some(0),
                EventKind::MessageReceived {
                    source: 1,
                    tag: 1,
                    bytes: 64,
                    queue_depth: 0,
                },
            ),
            ev(
                0.7,
                Some(0),
                EventKind::MetricsSnapshot {
                    functional: 0,
                    n: 50,
                    mean: Some(0.51),
                    err: Some(0.02),
                },
            ),
            ev(
                1.0,
                Some(0),
                EventKind::MetricsSnapshot {
                    functional: 0,
                    n: 100,
                    mean: Some(0.5),
                    err: Some(0.01),
                },
            ),
            ev(
                1.0,
                Some(0),
                EventKind::TargetPrecisionReached {
                    n: 100,
                    eps_max: 0.01,
                    target: 0.02,
                },
            ),
            ev(
                1.1,
                None,
                EventKind::RunCompleted {
                    realizations: 100,
                    t_comp_seconds: 1.1,
                    messages: 1,
                    bytes: 64,
                },
            ),
        ]
    }

    fn write_trace(name: &str, events: &[Event]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("parmonc-trace-{name}-{}.jsonl", std::process::id()));
        let text: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn read_trace_round_trips_and_rejects_garbage() {
        let events = sample_events();
        let path = write_trace("roundtrip", &events);
        let back = read_trace(&path).unwrap();
        assert_eq!(back.len(), events.len());
        assert_eq!(back[0].kind.name(), "run_started");

        std::fs::write(&path, "{\"v\":1,\"kind\":\"bogus\",\"time_s\":0}\n").unwrap();
        match read_trace(&path).unwrap_err() {
            TraceError::InvalidLine { line_no, .. } => assert_eq!(line_no, 1),
            other => panic!("expected InvalidLine, got {other:?}"),
        }
        let missing = path.with_extension("missing");
        assert!(matches!(
            read_trace(&missing).unwrap_err(),
            TraceError::Io { .. }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_summary_and_quantiles_render() {
        let events = sample_events();
        let summary = trace_summary(&events);
        assert!(summary.contains("8 events"));
        assert!(summary.contains("target precision reached"));
        let quantiles = trace_quantiles(&events);
        assert!(quantiles.contains("parmonc_message_bytes"));
        assert!(quantiles.contains("p99"));
        assert!(trace_quantiles(&[]).contains("no histogram samples"));
    }

    #[test]
    fn trace_convergence_lists_trajectory() {
        let out = trace_convergence(&sample_events());
        assert!(out.contains("functional 0 (2 observations)"));
        assert!(out.contains("target precision reached at n 100"));
        assert!(trace_convergence(&[]).contains("no metrics_snapshot"));
    }

    /// A synthetic span stream on one corrected run clock: rank 0
    /// positions + merges, rank 1 batches + sends, with waiting gaps.
    fn span_events() -> Vec<Event> {
        use parmonc_obs::RunMode;
        let mut v = vec![Event::at(
            0.0,
            None,
            EventKind::RunStarted {
                mode: RunMode::Threads,
                processors: 2,
                max_sample_volume: 100,
                seqnum: None,
                nrow: None,
                ncol: None,
                transport: Some(parmonc_obs::RunTransport::Tcp),
            },
        )];
        let mut add = |id: u64, rank: usize, phase: SpanPhase, t0: f64, t1: f64| {
            v.push(Event::at(
                t0,
                Some(rank),
                EventKind::SpanStarted {
                    span: id,
                    parent: None,
                    phase,
                },
            ));
            v.push(Event::at(
                t1,
                Some(rank),
                EventKind::SpanEnded { span: id, phase },
            ));
        };
        add(1, 0, SpanPhase::StreamPosition, 0.0, 0.1);
        add(2, 1, SpanPhase::RealizationBatch, 0.1, 0.6);
        add(3, 1, SpanPhase::SubtotalSend, 0.55, 0.6);
        add(4, 0, SpanPhase::CollectorMerge, 0.7, 0.9);
        v.push(Event::at(
            1.0,
            Some(0),
            EventKind::TargetPrecisionReached {
                n: 100,
                eps_max: 0.01,
                target: 0.02,
            },
        ));
        v
    }

    #[test]
    fn timeline_renders_per_rank_gantt() {
        let out = trace_timeline(&span_events());
        assert!(out.contains("8 spans") || out.contains("4 spans"), "{out}");
        assert!(out.contains("rank 0"));
        assert!(out.contains("rank 1"));
        assert!(out.contains("subtotal_send"));
        assert!(out.contains("collector_merge"));
        assert!(out.contains('#'));
        assert!(trace_timeline(&sample_events()).contains("no spans"));
    }

    #[test]
    fn critical_path_tiles_the_run_window_exactly() {
        let path = trace_critical_path(&span_events());
        // The steps cover run start to the anchor with no gap or
        // overlap, so the total equals the wall time by construction.
        assert!((path.wall_s - 1.0).abs() < 1e-9);
        assert!((path.total_s - path.wall_s).abs() < 1e-9, "{}", path.report);
        assert!(!path.steps.is_empty());
        assert!((path.steps[0].start_s - 0.0).abs() < 1e-9);
        assert!((path.steps.last().unwrap().end_s - 1.0).abs() < 1e-9);
        for pair in path.steps.windows(2) {
            assert!(
                (pair[0].end_s - pair[1].start_s).abs() < 1e-9,
                "steps must be contiguous: {pair:?}"
            );
        }
        // The longest stretch was rank 1's realization batch; the
        // in-flight walk hops from the merge back through the send into
        // the batch, crossing ranks along real dependencies.
        assert!(path
            .report
            .contains("dominated by rank 1 realization_batch"));
        assert!(path.report.contains("wait"));

        // Span-free traces degrade gracefully.
        let empty = trace_critical_path(&[]);
        assert_eq!(empty.steps.len(), 0);
        let no_spans = trace_critical_path(&sample_events());
        assert!((no_spans.total_s - no_spans.wall_s).abs() < 1e-9);
    }

    #[test]
    fn closed_spans_pairs_and_counts_unclosed() {
        let mut events = span_events();
        let (spans, unclosed) = closed_spans(&events);
        assert_eq!(spans.len(), 4);
        assert_eq!(unclosed, 0);
        // Drop the last span_ended: its span never closes.
        let pos = events
            .iter()
            .rposition(|e| matches!(e.kind, EventKind::SpanEnded { .. }))
            .unwrap();
        events.remove(pos);
        let (spans, unclosed) = closed_spans(&events);
        assert_eq!(spans.len(), 3);
        assert_eq!(unclosed, 1);
        assert!(trace_timeline(&events).contains("1 spans never closed"));
    }

    #[test]
    fn compare_traces_verdicts() {
        let events = sample_events();
        let same = compare_traces(&events, &events);
        assert!(same.matches, "{}", same.report);
        assert!(same.report.contains("event kinds: identical"));
        assert!(same.report.contains("traces match"));

        // Dropping the run_completed event truncates the trace.
        let truncated = &events[..events.len() - 1];
        let cmp = compare_traces(&events, truncated);
        assert!(!cmp.matches);
        assert!(cmp.report.contains("only in a"));

        // An estimate outside the combined error bars is a mismatch.
        let mut shifted = events.clone();
        if let EventKind::MetricsSnapshot { mean, .. } = &mut shifted[5].kind {
            *mean = Some(0.9);
        }
        let cmp = compare_traces(&events, &shifted);
        assert!(!cmp.matches);
        assert!(cmp.report.contains("exceeds combined error bar"));
    }
}
