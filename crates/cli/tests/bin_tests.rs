//! End-to-end tests of the command-line binaries, exercising the same
//! flows a cluster user would type (paper Sections 3.4–3.5).

use std::path::PathBuf;
use std::process::Command;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn genparam_writes_the_dat_file() {
    let dir = tempdir("genparam");
    let out = Command::new(env!("CARGO_BIN_EXE_genparam"))
        .args(["110", "90", "40"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ne = 110"));
    assert!(dir.join("parmonc_genparam.dat").is_file());
    // The library loads exactly what the tool wrote.
    let cfg = parmonc::genparam::load_genparam(&dir).unwrap();
    assert_eq!((cfg.ne(), cfg.np(), cfg.nr()), (110, 90, 40));
}

#[test]
fn genparam_rejects_bad_arguments() {
    for args in [vec!["1"], vec!["40", "90", "110"], vec!["x", "y", "z"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_genparam"))
            .args(&args)
            .output()
            .unwrap();
        assert!(!out.status.success(), "args {args:?} should fail");
    }
}

#[test]
fn demo_then_manaver_flow() {
    let dir = tempdir("flow");
    // Run the pi demo.
    let out = Command::new(env!("CARGO_BIN_EXE_parmonc-demo"))
        .args(["pi", "20000", "2", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pi ="), "{stdout}");
    assert!(dir.join("parmonc_data/results/func.dat").is_file());

    // Fake a crashed job by planting a worker subtotal, then manaver.
    let rd = parmonc::ResultsDir::open(&dir).unwrap();
    let mut acc = parmonc::MatrixAccumulator::new(1, 1).unwrap();
    for _ in 0..100 {
        acc.add(&[3.0]).unwrap();
    }
    rd.save_worker_subtotal(
        0,
        &parmonc::messages::Subtotal {
            acc,
            compute_seconds: 0.5,
        },
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_manaver"))
        .arg(dir.to_str().unwrap())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovered 100 realizations"), "{stdout}");
}

#[test]
fn manaver_fails_cleanly_without_data() {
    let dir = tempdir("nodata");
    let out = Command::new(env!("CARGO_BIN_EXE_manaver"))
        .arg(dir.join("missing").to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("manaver:"));
}

#[test]
fn monitored_demo_then_trace_analysis() {
    let dir = tempdir("trace-flow");
    let out = Command::new(env!("CARGO_BIN_EXE_parmonc-demo"))
        .args(["pi", "20000", "2", dir.to_str().unwrap(), "--monitor"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = dir.join("parmonc_data/monitor/run_metrics.jsonl");
    assert!(trace.is_file());
    assert!(dir.join("parmonc_data/monitor/metrics.prom").is_file());

    let trace_cmd = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_parmonc-trace"))
            .args(args)
            .output()
            .unwrap()
    };
    let summary = trace_cmd(&["summary", trace.to_str().unwrap()]);
    assert!(summary.status.success());
    assert!(String::from_utf8_lossy(&summary.stdout).contains("events"));

    let quantiles = trace_cmd(&["quantiles", trace.to_str().unwrap()]);
    assert!(quantiles.status.success());
    assert!(String::from_utf8_lossy(&quantiles.stdout).contains("parmonc_realization_seconds"));

    let convergence = trace_cmd(&["convergence", trace.to_str().unwrap()]);
    assert!(convergence.status.success());
    assert!(String::from_utf8_lossy(&convergence.stdout).contains("functional 0"));

    // A run compared with itself matches (exit 0).
    let compare = trace_cmd(&["compare", trace.to_str().unwrap(), trace.to_str().unwrap()]);
    assert!(compare.status.success());
    assert!(String::from_utf8_lossy(&compare.stdout).contains("traces match"));

    // A corrupt trace is refused with the documented exit code 3.
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"v\":1,\"kind\":\"bogus\",\"time_s\":0}\n").unwrap();
    let refused = trace_cmd(&["summary", bad.to_str().unwrap()]);
    assert_eq!(refused.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&refused.stderr).contains("invalid trace line"));
}

#[test]
fn spanned_demo_then_timeline_and_critical_path() {
    let dir = tempdir("span-flow");
    let out = Command::new(env!("CARGO_BIN_EXE_parmonc-demo"))
        .args(["pi", "20000", "2", dir.to_str().unwrap(), "--spans"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = dir.join("parmonc_data/monitor/run_metrics.jsonl");
    assert!(trace.is_file());

    let trace_cmd = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_parmonc-trace"))
            .args(args)
            .output()
            .unwrap()
    };
    let timeline = trace_cmd(&["timeline", trace.to_str().unwrap()]);
    assert!(timeline.status.success());
    let rendered = String::from_utf8_lossy(&timeline.stdout);
    assert!(rendered.contains("rank 0"), "{rendered}");
    assert!(rendered.contains("realization_batch"), "{rendered}");

    let critical = trace_cmd(&["critical-path", trace.to_str().unwrap()]);
    assert!(critical.status.success());
    let rendered = String::from_utf8_lossy(&critical.stdout);
    assert!(rendered.contains("path total"), "{rendered}");
    assert!(rendered.contains("dominated by"), "{rendered}");

    // Numeric validation against the same trace: the critical path is
    // dependency-ordered (contiguous, monotone steps) and its total
    // accounts for the full run wall time.
    let events = parmonc_cli::read_trace(&trace).unwrap();
    let report = parmonc_cli::trace_critical_path(&events);
    assert!(!report.steps.is_empty(), "critical path must be non-empty");
    assert!(report.wall_s > 0.0);
    assert!(
        (report.total_s - report.wall_s).abs() <= 1e-9 + 1e-6 * report.wall_s,
        "path total {} must equal run wall time {}",
        report.total_s,
        report.wall_s
    );
    let mut cursor = f64::NEG_INFINITY;
    for step in &report.steps {
        assert!(step.start_s >= cursor - 1e-12, "steps out of order");
        assert!(step.end_s >= step.start_s);
        cursor = step.end_s;
    }
}

#[test]
fn demo_rejects_unknown_workload() {
    let out = Command::new(env!("CARGO_BIN_EXE_parmonc-demo"))
        .arg("juggling")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}
