//! Umbrella crate for the PARMONC reproduction workspace: re-exports the
//! member crates so examples and integration tests have one import root.

pub use parmonc;
pub use parmonc_apps as apps;
pub use parmonc_mpi as mpi;
pub use parmonc_rng as rng;
pub use parmonc_rngtest as rngtest;
pub use parmonc_sde as sde;
pub use parmonc_simcluster as simcluster;
pub use parmonc_stats as stats;
pub use parmonc_vr as vr;
