//! Integration of the file layer (Section 3.6), resumption (res = 1)
//! and manual averaging (Section 3.4) across a chain of real runs.

use std::path::PathBuf;

use parmonc::genparam::{load_genparam, write_genparam};
use parmonc::manaver::manaver;
use parmonc::prelude::{Parmonc, ParmoncError, RealizeFn, Resume};
use parmonc_stats::report;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-fr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uniform() -> impl parmonc::Realize + Sync {
    RealizeFn::new(|rng, out| {
        for o in out.iter_mut() {
            *o = rng.next_f64();
        }
    })
}

#[test]
fn result_files_are_complete_and_parseable() {
    let dir = tempdir("files");
    let report_run = Parmonc::builder(3, 2)
        .max_sample_volume(1_000)
        .processors(2)
        .seqnum(4)
        .output_dir(&dir)
        .run(uniform())
        .unwrap();
    let rd = &report_run.results_dir;

    // func.dat: the matrix of sample means.
    let func = std::fs::read_to_string(rd.func_path()).unwrap();
    let (nrow, ncol, means) = report::parse_func(&func).unwrap();
    assert_eq!((nrow, ncol), (3, 2));
    assert_eq!(means, report_run.summary.means);

    // func_ci.dat: means + errors + variances per entry.
    let ci = report::parse_func_ci(&std::fs::read_to_string(rd.func_ci_path()).unwrap()).unwrap();
    assert_eq!(ci.len(), 6);
    for row in &ci {
        assert!(row.variance >= 0.0);
        assert!(row.abs_error >= 0.0);
    }

    // func_log.dat: volume, tau, upper bounds, processors, seqnum.
    let log =
        report::parse_func_log(&std::fs::read_to_string(rd.func_log_path()).unwrap()).unwrap();
    assert_eq!(log.sample_volume, 1_000);
    assert_eq!(log.processors, 2);
    assert_eq!(log.seqnum, 4);
    assert_eq!(log.eps_max, report_run.summary.eps_max);

    // parmonc_exp.dat: the experiment journal.
    let experiments = rd.read_experiments().unwrap();
    assert_eq!(experiments.len(), 1);
    assert_eq!(experiments[0].seqnum, 4);
    assert!(!experiments[0].resumed);
}

#[test]
fn resume_chain_preserves_total_volume_and_shrinks_errors() {
    let dir = tempdir("chain");
    let mut volumes = Vec::new();
    let mut errors = Vec::new();
    for (i, resume) in [Resume::New, Resume::Resume, Resume::Resume]
        .into_iter()
        .enumerate()
    {
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(2_000)
            .processors(2)
            .seqnum(i as u64)
            .resume(resume)
            .output_dir(&dir)
            .run(uniform())
            .unwrap();
        volumes.push(report.total_volume);
        errors.push(report.summary.eps_max);
    }
    assert_eq!(volumes, vec![2_000, 4_000, 6_000]);
    assert!(errors[0] > errors[1] && errors[1] > errors[2], "{errors:?}");

    // The journal recorded all three experiments.
    let rd = parmonc::ResultsDir::open(&dir).unwrap();
    assert_eq!(rd.read_experiments().unwrap().len(), 3);
}

#[test]
fn manaver_recovers_a_simulated_crash_then_resume_continues() {
    let dir = tempdir("crash");
    // Healthy run to produce a checkpoint + baseline.
    Parmonc::builder(1, 1)
        .max_sample_volume(1_000)
        .processors(2)
        .seqnum(0)
        .output_dir(&dir)
        .run(uniform())
        .unwrap();

    // Simulate a crashed second job: baseline = current checkpoint,
    // plus worker files that never made it into a final save.
    let rd = parmonc::ResultsDir::open(&dir).unwrap();
    let checkpoint = rd.load_checkpoint().unwrap().unwrap();
    rd.save_baseline(&checkpoint).unwrap();
    let mut crashed = parmonc_stats::MatrixAccumulator::new(1, 1).unwrap();
    for i in 0..500 {
        crashed.add(&[f64::from(i % 2)]).unwrap();
    }
    rd.save_worker_subtotal(
        1,
        &parmonc::messages::Subtotal {
            acc: crashed,
            compute_seconds: 1.0,
        },
    )
    .unwrap();

    let mreport = manaver(&dir).unwrap();
    assert_eq!(mreport.total_volume, 1_500);
    assert_eq!(mreport.recovered_volume, 500);

    // res = 1 picks up the recovered total.
    let resumed = Parmonc::builder(1, 1)
        .max_sample_volume(500)
        .processors(2)
        .seqnum(1)
        .resume(Resume::Resume)
        .output_dir(&dir)
        .run(uniform())
        .unwrap();
    assert_eq!(resumed.resumed_volume, 1_500);
    assert_eq!(resumed.total_volume, 2_000);
}

#[test]
fn genparam_file_controls_the_hierarchy() {
    let dir = tempdir("genparam");
    std::fs::create_dir_all(&dir).unwrap();
    // Default when absent.
    assert_eq!(load_genparam(&dir).unwrap(), parmonc::LeapConfig::default());
    // genparam 100 80 40 writes the file; loading honours it.
    write_genparam(&dir, 100, 80, 40).unwrap();
    let cfg = load_genparam(&dir).unwrap();
    assert_eq!((cfg.ne(), cfg.np(), cfg.nr()), (100, 80, 40));

    // A run with the custom leaps still produces correct estimates.
    let report = Parmonc::builder(1, 1)
        .max_sample_volume(10_000)
        .processors(2)
        .leaps(cfg)
        .output_dir(&dir)
        .run(uniform())
        .unwrap();
    assert!((report.summary.means[0] - 0.5).abs() < 0.02);
}

#[test]
fn corrupt_checkpoint_is_reported_as_corruption() {
    // A checkpoint without a valid integrity footer (and no usable
    // backup) surfaces as CorruptCheckpoint naming the file.
    let dir = tempdir("corrupt");
    let rd = parmonc::ResultsDir::create(&dir).unwrap();
    std::fs::write(rd.checkpoint_path(), "garbage\n").unwrap();
    let err = Parmonc::builder(1, 1)
        .max_sample_volume(10)
        .resume(Resume::Resume)
        .output_dir(&dir)
        .run(uniform())
        .unwrap_err();
    match &err {
        ParmoncError::CorruptCheckpoint { path, reason } => {
            assert!(
                path.to_string_lossy().contains("checkpoint.dat"),
                "{}",
                path.display()
            );
            assert!(!reason.is_empty());
        }
        other => panic!("expected CorruptCheckpoint, got {other}"),
    }
}
