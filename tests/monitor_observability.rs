//! Cross-crate integration for the run-monitor observability layer:
//! a monitored run writes a schema-valid event trace, monitoring never
//! perturbs the estimates, and the real-thread runner and the virtual
//! cluster simulator speak the same event vocabulary.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use parmonc::prelude::{Exchange, Parmonc, RunReport};
use parmonc_apps::PiEstimator;
use parmonc_obs::{EventKind, MemorySink, Monitor};
use parmonc_simcluster::{simulate_monitored, ClusterConfig};

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn monitored_pi_run(name: &str, monitor: bool) -> RunReport {
    let builder = Parmonc::builder(1, 1)
        .max_sample_volume(20_000)
        .processors(4)
        .seqnum(7)
        .exchange(Exchange::EveryRealization)
        .output_dir(tempdir(name));
    let builder = if monitor { builder.monitor() } else { builder };
    builder.run(PiEstimator).unwrap()
}

/// Reads a run's `monitor/run_metrics.jsonl`, validates every line
/// against the documented schema, and returns the event-kind names in
/// file order.
fn validated_kinds(report: &RunReport) -> Vec<&'static str> {
    let path = report.results_dir.run_metrics_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            parmonc_obs::schema::validate_line(line)
                .unwrap_or_else(|e| panic!("schema violation in {line:?}: {e}"))
        })
        .collect()
}

#[test]
fn monitored_run_writes_schema_valid_jsonl() {
    let report = monitored_pi_run("jsonl", true);
    let summary = report
        .monitor
        .as_ref()
        .expect("monitored run has a summary");
    assert_eq!(summary.total_realizations, Some(report.total_volume));

    let kinds = validated_kinds(&report);
    assert!(kinds.len() >= 10, "only {} events", kinds.len());
    assert_eq!(kinds.first(), Some(&"run_started"));
    assert_eq!(kinds.last(), Some(&"run_completed"));
    // A monitored healthy run exercises the full base vocabulary; the
    // fault kinds only appear when a fault plan injects failures (see
    // tests/chaos.rs), and the conditional kinds only when their
    // trigger — a precision target — is configured.
    let seen: BTreeSet<&str> = kinds.iter().copied().collect();
    for kind in EventKind::ALL_KINDS
        .into_iter()
        .filter(|k| !EventKind::FAULT_KINDS.contains(k))
        .filter(|k| !EventKind::CONDITIONAL_KINDS.contains(k))
    {
        assert!(seen.contains(kind), "threads run never emitted {kind}");
    }
    for kind in EventKind::FAULT_KINDS {
        assert!(!seen.contains(kind), "healthy run emitted {kind}");
    }
    for kind in EventKind::CONDITIONAL_KINDS {
        assert!(!seen.contains(kind), "untargeted run emitted {kind}");
    }
}

#[test]
fn monitor_does_not_perturb_estimates() {
    // The estimate is a pure function of (seqnum, M, maxsv); attaching
    // the monitor must not change a single bit of it.
    let plain = monitored_pi_run("plain", false);
    let monitored = monitored_pi_run("monitored", true);
    assert!(plain.monitor.is_none());
    assert!(monitored.monitor.is_some());
    assert_eq!(plain.total_volume, monitored.total_volume);
    assert_eq!(plain.worker_volumes, monitored.worker_volumes);
    assert_eq!(plain.summary.means, monitored.summary.means);
    assert_eq!(plain.summary.variances, monitored.summary.variances);
    assert_eq!(plain.summary.abs_errors, monitored.summary.abs_errors);
}

#[test]
fn threads_and_simcluster_emit_the_same_event_kinds() {
    // Both engines must be observable through the identical vocabulary,
    // so dashboards built on one trace work unchanged on the other.
    let threads: BTreeSet<&str> = validated_kinds(&monitored_pi_run("kinds", true))
        .into_iter()
        .collect();

    let sink = Arc::new(MemorySink::new());
    let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
    let _ = simulate_monitored(&ClusterConfig::paper_testbed(4), 64, &monitor);
    let sim: BTreeSet<&str> = sink.snapshot().iter().map(|e| e.kind.name()).collect();

    assert_eq!(threads, sim);
    let base: BTreeSet<&str> = EventKind::ALL_KINDS
        .into_iter()
        .filter(|k| !EventKind::FAULT_KINDS.contains(k))
        .filter(|k| !EventKind::CONDITIONAL_KINDS.contains(k))
        .collect();
    assert_eq!(threads, base);
}

#[test]
fn targeted_run_declares_target_precision() {
    // A generous precision target is met immediately, so the trace
    // carries exactly one (schema-valid) target_precision_reached and
    // per-functional metrics_snapshot lines with real mean/err values.
    let report = Parmonc::builder(1, 1)
        .max_sample_volume(20_000)
        .processors(4)
        .seqnum(7)
        .exchange(Exchange::EveryRealization)
        .target_abs_error(0.25)
        .output_dir(tempdir("targeted"))
        .monitor()
        .run(PiEstimator)
        .unwrap();
    let kinds = validated_kinds(&report);
    assert_eq!(
        kinds
            .iter()
            .filter(|k| **k == "target_precision_reached")
            .count(),
        1,
        "declared exactly once"
    );
    assert!(kinds.contains(&"metrics_snapshot"));
    let summary = report.monitor.as_ref().expect("monitored run");
    let (n, eps_max, target) = summary.target_precision.expect("target declared");
    assert!(n >= 2);
    assert!(eps_max <= target);
    assert_eq!(target, 0.25);
}

#[test]
fn metrics_prom_is_valid_prometheus_text() {
    // The exit-time exposition must parse as Prometheus text format and
    // agree with the run on the headline counters.
    let report = monitored_pi_run("prom", true);
    let path = report.results_dir.metrics_prom_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    parmonc_obs::validate_prometheus_text(&text).expect("valid Prometheus exposition");
    assert!(text.contains("parmonc_runs_completed_total 1"));
    assert!(text.contains("parmonc_realization_seconds_bucket"));
    assert!(text.contains(&format!(
        "parmonc_total_realizations {}",
        report.total_volume
    )));
}

#[test]
fn metrics_plane_does_not_perturb_faulted_simulation() {
    // The deterministic virtual-time fault replay must be bit-identical
    // with the metrics plane attached or absent.
    use parmonc_faults::FaultPlan;
    use parmonc_simcluster::simulate_faulted;

    let config = ClusterConfig::paper_testbed(8);
    let plan = FaultPlan::new(11).crash_rank(3, 10).drop_fraction(0.05);
    let plain = simulate_faulted(&config, 800, &plan, 50.0, &Monitor::disabled());
    let monitor = Monitor::new(vec![
        Box::new(Arc::new(MemorySink::new())),
        Box::new(parmonc_obs::MetricsSink::new()),
    ]);
    let monitored = simulate_faulted(&config, 800, &plan, 50.0, &monitor);
    assert_eq!(plain, monitored);
}
