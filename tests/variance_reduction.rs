//! Variance reduction composed with the PARMONC machinery: the VR
//! estimators draw from real leapfrogged realization streams, and a
//! VR-enhanced `Realize` routine runs through the parallel runner.

use parmonc::prelude::{Parmonc, RealizeFn};
use parmonc_rng::{StreamHierarchy, StreamId, UniformSource};
use parmonc_vr::antithetic::plain_estimate;
use parmonc_vr::{antithetic_estimate, normal_tail_probability, stratified_estimate};

fn stream() -> parmonc_rng::RealizationStream {
    StreamHierarchy::default()
        .realization_stream(StreamId::new(3, 1, 4))
        .unwrap()
}

#[test]
fn antithetic_on_realization_streams() {
    let mut s = stream();
    let acc = antithetic_estimate(&mut s, 50_000, |rng| rng.next_f64().exp());
    let truth = std::f64::consts::E - 1.0;
    assert!((acc.mean() - truth).abs() <= acc.abs_error() + 1e-3);
}

#[test]
fn stratified_on_realization_streams() {
    let mut s = stream();
    let est = stratified_estimate(&mut s, 8, 10_000, |rng| rng.next_f64().exp());
    let truth = std::f64::consts::E - 1.0;
    assert!((est.mean - truth).abs() <= est.abs_error() + 1e-3);
}

#[test]
fn importance_sampling_on_realization_streams() {
    let mut s = stream();
    let acc = normal_tail_probability(&mut s, 4.0, 200_000);
    let exact = parmonc_vr::importance::normal_tail_exact(4.0);
    assert!(
        (acc.mean() - exact).abs() < 0.05 * exact,
        "{} vs {exact}",
        acc.mean()
    );
}

#[test]
fn antithetic_realize_routine_through_the_runner() {
    // Each PARMONC realization is itself an antithetic *pair*: the
    // user routine draws u, evaluates f(u) and f(1-u), and returns the
    // pair average. The runner sees a realization with ~5x smaller
    // standard deviation at the same per-realization cost class.
    let dir = std::env::temp_dir().join(format!("parmonc-vr-runner-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let antithetic_exp = RealizeFn::new(
        |rng: &mut parmonc_rng::RealizationStream, out: &mut [f64]| {
            let u = rng.next_f64();
            out[0] = 0.5 * (u.exp() + (1.0 - u).exp());
        },
    );
    let report = Parmonc::builder(1, 1)
        .max_sample_volume(50_000)
        .processors(4)
        .output_dir(&dir)
        .run(antithetic_exp)
        .unwrap();

    let truth = std::f64::consts::E - 1.0;
    assert!(
        (report.summary.means[0] - truth).abs() <= report.summary.abs_errors[0] + 1e-3,
        "{} vs {truth}",
        report.summary.means[0]
    );
    // Compare against the plain estimator's variance at equal L.
    let mut s = stream();
    let plain = plain_estimate(&mut s, 50_000, |rng: &mut dyn UniformSource| {
        rng.next_f64().exp()
    });
    assert!(
        report.summary.variances[0] < 0.1 * plain.variance(),
        "antithetic realize variance {} vs plain {}",
        report.summary.variances[0],
        plain.variance()
    );
}
