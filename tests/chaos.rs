//! Chaos integration: seeded fault matrices driven through three
//! engines — the real-thread runner (`mpi_*` tests), the virtual
//! cluster simulator (`simcluster_*` tests), and the loopback TCP
//! backend with scripted link severance (`tcp_*` tests) — plus the
//! resume-after-crash and framing-robustness satellites. CI runs the
//! prefixes as separate matrix jobs.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parmonc::messages::Subtotal;
use parmonc::prelude::{Exchange, NetOptions, Parmonc, RealizeFn, Resume, RunReport, Topology};
use parmonc_faults::{mutate_bytes, FaultPlan, Mutation};
use parmonc_mpi::bytes::Bytes;
use parmonc_obs::{MemorySink, Monitor};
use parmonc_simcluster::{simulate_faulted, ClusterConfig};
use parmonc_stats::MatrixAccumulator;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uniform() -> impl parmonc::Realize + Sync {
    RealizeFn::new(|rng, out| {
        for o in out.iter_mut() {
            *o = rng.next_f64();
        }
    })
}

/// Validates every line of a run's monitor trace against the schema
/// and returns the set of event kinds it contains.
fn validated_kinds(report: &RunReport) -> BTreeSet<&'static str> {
    let path = report.results_dir.run_metrics_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            parmonc_obs::schema::validate_line(line)
                .unwrap_or_else(|e| panic!("schema violation in {line:?}: {e}"))
        })
        .collect()
}

/// The acceptance demo: a monitored 8-rank run with one worker crashed
/// mid-run and 5 % of messages dropped still completes, reassigns the
/// lost budget to survivors (on their own fresh streams — never reusing
/// a leapfrog stream), and lands within the reported error bars of the
/// fault-free run.
#[test]
fn mpi_chaos_demo_survives_crash_and_drops() {
    let chaotic = Parmonc::builder(1, 1)
        .max_sample_volume(4_000)
        .processors(8)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .faults(FaultPlan::new(2024).crash_rank(3, 25).drop_fraction(0.05))
        .heartbeat_period(Duration::from_millis(10))
        .liveness_timeout(Duration::from_millis(150))
        .monitor()
        .output_dir(tempdir("demo-faulted"))
        .run(uniform())
        .unwrap();
    let healthy = Parmonc::builder(1, 1)
        .max_sample_volume(4_000)
        .processors(8)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .output_dir(tempdir("demo-healthy"))
        .run(uniform())
        .unwrap();

    // The run completed and the dead rank's budget was made up.
    assert!(
        chaotic.lost_workers.contains(&3),
        "{:?}",
        chaotic.lost_workers
    );
    assert!(chaotic.reassigned_realizations > 0);
    assert!(
        chaotic.new_volume >= 4_000,
        "volume {} must reach the target",
        chaotic.new_volume
    );

    // Both estimates agree with truth and with each other within the
    // combined reported stochastic error bars.
    let (mf, ef) = (chaotic.summary.means[0], chaotic.summary.abs_errors[0]);
    let (mh, eh) = (healthy.summary.means[0], healthy.summary.abs_errors[0]);
    assert!((mf - 0.5).abs() <= ef, "faulted mean {mf} ± {ef}");
    assert!((mh - 0.5).abs() <= eh, "healthy mean {mh} ± {eh}");
    assert!((mf - mh).abs() <= ef + eh, "{mf} ± {ef} vs {mh} ± {eh}");

    // The monitor saw the faults, and the whole trace is schema-valid.
    let summary = chaotic.monitor.as_ref().expect("monitored run");
    assert!(summary.faults_injected >= 1);
    assert!(summary.workers_lost >= 1);
    assert!(summary.reassigned_realizations > 0);
    let kinds = validated_kinds(&chaotic);
    for kind in ["fault_injected", "worker_lost", "work_reassigned"] {
        assert!(kinds.contains(kind), "trace never recorded {kind}");
    }
}

/// The CI chaos matrix, real-thread half: eight seeded fault plans,
/// each crashing one rank and dropping 5 % of messages, must all
/// complete at full volume with unbiased estimates.
#[test]
fn mpi_chaos_matrix_eight_seeds() {
    for seed in 0..8u64 {
        let victim = 1 + (seed as usize % 3);
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(800)
            .processors(4)
            .seqnum(seed)
            .exchange(Exchange::EveryRealization)
            .faults(
                FaultPlan::new(seed)
                    .crash_rank(victim, 5)
                    .drop_fraction(0.05),
            )
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .output_dir(tempdir(&format!("matrix-{seed}")))
            .run(uniform())
            .unwrap();
        assert!(
            report.lost_workers.contains(&victim),
            "seed {seed}: lost {:?}",
            report.lost_workers
        );
        assert!(
            report.new_volume >= 800,
            "seed {seed}: {}",
            report.new_volume
        );
        assert!(
            (report.summary.means[0] - 0.5).abs() < 0.06,
            "seed {seed}: mean {}",
            report.summary.means[0]
        );
    }
}

/// The CI chaos matrix, virtual-time half: the same shape of fault
/// plan replayed through the cluster simulator, with schema-validated
/// fault events.
#[test]
fn simcluster_chaos_matrix_eight_seeds() {
    let config = ClusterConfig::paper_testbed(8);
    for seed in 0..8u64 {
        let victim = 1 + (seed as usize % 7);
        let plan = FaultPlan::new(seed)
            .crash_rank(victim, 10)
            .drop_fraction(0.05);
        let sink = Arc::new(MemorySink::new());
        let monitor = Monitor::new(vec![Box::new(Arc::clone(&sink))]);
        let run = simulate_faulted(&config, 800, &plan, 50.0, &monitor);
        assert!(
            run.lost_workers.contains(&victim),
            "seed {seed}: lost {:?}",
            run.lost_workers
        );
        assert!(
            run.result.realizations >= 800,
            "seed {seed}: volume {}",
            run.result.realizations
        );
        let events = sink.snapshot();
        let kinds: BTreeSet<&str> = events
            .iter()
            .map(|e| {
                parmonc_obs::schema::validate_line(&e.to_json_line())
                    .unwrap_or_else(|err| panic!("seed {seed}: schema violation: {err}"))
            })
            .collect();
        for kind in ["fault_injected", "worker_lost", "work_reassigned"] {
            assert!(kinds.contains(kind), "seed {seed}: no {kind} event");
        }
    }
}

/// Blocks until the collector under `dir` publishes its bound address
/// in `parmonc_data/collector.addr` (the ephemeral-port discovery path).
fn wait_for_addr(dir: &std::path::Path) -> String {
    let path = dir.join("parmonc_data").join("collector.addr");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "collector never wrote {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The CI chaos matrix, TCP half: seeded plans sever each worker's link
/// mid-run; the seeded reconnect/backoff heals every outage, the run
/// completes at full volume with no workers declared lost, and the
/// collector's trace records the rejoins.
#[test]
fn tcp_chaos_matrix_severed_links_heal() {
    for seed in 0..4u64 {
        let plan = move || {
            FaultPlan::new(seed)
                .sever_connection(1, 8 + seed)
                .sever_connection(2, 20 + seed)
        };
        let collector_dir = tempdir(&format!("tcp-matrix-c{seed}"));
        let collector = {
            let dir = collector_dir.clone();
            std::thread::spawn(move || {
                Parmonc::builder(1, 1)
                    .max_sample_volume(900)
                    .processors(3)
                    .seqnum(seed)
                    .exchange(Exchange::EveryRealization)
                    .faults(plan())
                    .monitor()
                    .net(NetOptions::listen("127.0.0.1:0"))
                    .output_dir(dir)
                    .run(uniform())
            })
        };
        let addr = wait_for_addr(&collector_dir);
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                let dir = tempdir(&format!("tcp-matrix-w{seed}-{i}"));
                std::thread::spawn(move || {
                    Parmonc::builder(1, 1)
                        .max_sample_volume(900)
                        .processors(3)
                        .seqnum(seed)
                        .exchange(Exchange::EveryRealization)
                        .faults(plan())
                        .net(NetOptions::join(addr))
                        .output_dir(dir)
                        .run_worker(uniform())
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        let report = collector.join().unwrap().unwrap();
        assert!(
            report.lost_workers.is_empty(),
            "seed {seed}: lost {:?}",
            report.lost_workers
        );
        assert!(
            report.new_volume >= 900,
            "seed {seed}: volume {}",
            report.new_volume
        );
        assert!(
            (report.summary.means[0] - 0.5).abs() < 0.06,
            "seed {seed}: mean {}",
            report.summary.means[0]
        );
        let kinds = validated_kinds(&report);
        assert!(
            kinds.contains("worker_reconnected"),
            "seed {seed}: trace never recorded a rejoin: {kinds:?}"
        );
    }
}

/// Tree-topology chaos, real-thread half: crashing an *interior relay*
/// (rank 1 carries ranks 3 and 4 under a binary tree over 7 ranks)
/// must not lose its children's work. The children fall back to
/// reporting straight to the collector — via the reparent order or
/// their own disconnected-uplink fallback, whichever lands first —
/// their cumulative subtotals make anything buffered in the dead relay
/// redundant, and the run completes at full volume with only the relay
/// itself reported lost.
#[test]
fn mpi_tree_relay_crash_reparents_its_children() {
    let report = Parmonc::builder(1, 1)
        .max_sample_volume(2_800)
        .processors(7)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .topology(Topology::Tree { arity: 2 })
        .faults(FaultPlan::new(2025).crash_rank(1, 25))
        .heartbeat_period(Duration::from_millis(10))
        .liveness_timeout(Duration::from_millis(150))
        .monitor()
        .output_dir(tempdir("tree-relay-crash"))
        .run(uniform())
        .unwrap();
    assert_eq!(
        report.lost_workers,
        vec![1],
        "only the relay itself dies: {:?}",
        report.lost_workers
    );
    assert!(report.reassigned_realizations > 0);
    assert!(
        report.new_volume >= 2_800,
        "volume {} must reach the target",
        report.new_volume
    );
    assert!(
        (report.summary.means[0] - 0.5).abs() < 0.06,
        "mean {}",
        report.summary.means[0]
    );
    let kinds = validated_kinds(&report);
    for kind in ["worker_lost", "work_reassigned"] {
        assert!(kinds.contains(kind), "trace never recorded {kind}");
    }
}

/// Tree-topology chaos, TCP half: the worker holding relay rank 1
/// (child: rank 3) goes silent mid-quota while its child is still
/// computing. The collector detects the loss by heartbeat timeout,
/// retires the lease, and sends the reparent order to the orphaned
/// child over its own connection; the child re-routes its cumulative
/// subtotals straight to the collector and the run completes at full
/// volume with only the relay lost.
#[test]
fn tcp_tree_relay_crash_reparents_over_the_wire() {
    // Slow realizations keep every child mid-quota across the crash
    // and its detection: reparenting is for *running* children (a
    // child that exits in the relay's shadow is a liveness case, not a
    // reparent one).
    let slow = || {
        RealizeFn::new(|rng, out| {
            std::thread::sleep(Duration::from_micros(500));
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        })
    };
    let collector_dir = tempdir("tcp-tree-relay-c");
    let build = move |dir: PathBuf| {
        Parmonc::builder(1, 1)
            .max_sample_volume(2_000)
            .processors(4)
            .seqnum(8)
            .exchange(Exchange::EveryRealization)
            .topology(Topology::Tree { arity: 2 })
            .faults(FaultPlan::new(17).crash_rank(1, 20))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(100))
            .output_dir(dir)
    };
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            build(dir)
                .monitor()
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(slow())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let dir = tempdir(&format!("tcp-tree-relay-w{i}"));
            std::thread::spawn(move || {
                // The crash script keys on the granted rank: whichever
                // worker leases rank 1 goes silent after 20
                // realizations.
                build(dir).net(NetOptions::join(addr)).run_worker(slow())
            })
        })
        .collect();
    for w in workers {
        // The crashed worker's loop also returns cleanly: the crash is
        // its silence, which the collector must detect remotely.
        w.join().unwrap().unwrap();
    }
    let report = collector.join().unwrap().unwrap();
    assert_eq!(
        report.lost_workers,
        vec![1],
        "only the relay dies: {:?}",
        report.lost_workers
    );
    assert!(
        report.new_volume >= 1_200,
        "volume {} must reach the target",
        report.new_volume
    );
    assert!(
        (report.summary.means[0] - 0.5).abs() < 0.06,
        "mean {}",
        report.summary.means[0]
    );
}

/// Resume-after-crash satellite: a run whose primary checkpoint is
/// torn mid-write resumes from the last-good backup generation, reports
/// the recovery, and keeps the total volume monotone.
#[test]
fn mpi_torn_checkpoint_resume_chain() {
    let dir = tempdir("torn-resume");
    let first = Parmonc::builder(1, 1)
        .max_sample_volume(400)
        .processors(2)
        .seqnum(0)
        .exchange(Exchange::EveryRealization)
        // Save on every collector pass so the run leaves several
        // rotated checkpoint generations behind.
        .averaging_period(Duration::ZERO)
        .output_dir(&dir)
        .run(uniform())
        .unwrap();
    assert!(!first.checkpoint_recovered);

    // Tear the primary checkpoint the way an interrupted write would:
    // keep only the first half, so the integrity footer is gone. The
    // rotated backup from the previous save generation stays intact.
    let rd = parmonc::ResultsDir::open(&dir).unwrap();
    assert!(rd.checkpoint_backup_path().exists(), "no backup generation");
    let good = std::fs::read_to_string(rd.checkpoint_path()).unwrap();
    std::fs::write(rd.checkpoint_path(), &good[..good.len() / 2]).unwrap();

    let resumed = Parmonc::builder(1, 1)
        .max_sample_volume(400)
        .processors(2)
        .seqnum(1)
        .resume(Resume::Resume)
        .monitor()
        .output_dir(&dir)
        .run(uniform())
        .unwrap();
    assert!(resumed.checkpoint_recovered, "backup was not used");
    // The backup holds some last-good generation: never more than the
    // first run produced, and the chain's volume stays monotone.
    assert!(resumed.resumed_volume >= 1 && resumed.resumed_volume <= 400);
    assert_eq!(resumed.total_volume, resumed.resumed_volume + 400);
    let summary = resumed.monitor.as_ref().expect("monitored run");
    assert_eq!(summary.checkpoint_recoveries, 1);
    assert!(validated_kinds(&resumed).contains("checkpoint_recovered"));
}

/// Framing satellite: a subtotal frame mutated by a seeded bit-flip or
/// truncation must decode to a clean error or to some valid subtotal —
/// never panic, never tear down the collector.
#[test]
fn mpi_framing_survives_mutated_frames() {
    let mut acc = MatrixAccumulator::new(3, 2).unwrap();
    acc.add(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
    acc.add(&[-1.0, 0.5, 0.0, 2.0, 8.0, 1.0]).unwrap();
    let frame = Subtotal {
        acc,
        compute_seconds: 12.75,
    }
    .encode()
    .to_vec();

    let mut decoded_ok = 0u32;
    let mut rejected = 0u32;
    for seed in 0..256u64 {
        let mut bytes = frame.clone();
        let mutation = mutate_bytes(seed, &mut bytes);
        match Subtotal::decode(Bytes::from(bytes)) {
            Ok(_) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
        // Truncations below the fixed header can never decode.
        if let Mutation::Truncate { len } = mutation {
            if len < 32 {
                assert!(rejected > 0);
            }
        }
    }
    assert_eq!(decoded_ok + rejected, 256);
    // Both outcomes occur across the seed sweep: flips inside an f64
    // payload yield a (garbage but well-formed) subtotal, truncations
    // are rejected — the collector must survive either.
    assert!(rejected > 0, "no mutation was rejected");
    assert!(decoded_ok > 0, "every mutation was rejected");
}
