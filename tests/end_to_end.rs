//! Cross-crate integration: the full PARMONC pipeline (rng → runner →
//! stats → files) against closed-form answers.

use std::path::PathBuf;

use parmonc::prelude::{Exchange, Parmonc, RealizeFn};
use parmonc_apps::{GaltonWatson, PiEstimator};
use parmonc_sde::{EulerScheme, OutputGrid, PaperDiffusion};

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn pi_estimate_is_covered_by_its_error_bar() {
    let report = Parmonc::builder(1, 1)
        .max_sample_volume(400_000)
        .processors(4)
        .output_dir(tempdir("pi"))
        .run(PiEstimator)
        .unwrap();
    let mean = report.summary.means[0];
    let eps = report.summary.abs_errors[0];
    // 3-sigma interval: misses with probability ~0.3%.
    assert!(
        (mean - std::f64::consts::PI).abs() <= eps + 0.01,
        "pi = {mean} ± {eps}"
    );
    // eps at L = 400k for Var = 16 p (1-p) ≈ 2.70: 3*1.64/632 ≈ 0.0078.
    assert!(eps < 0.01, "eps {eps}");
}

#[test]
fn diffusion_means_match_analytic_solution() {
    // The paper's performance-test workload (scaled) through the real
    // parallel runner, checked against E xi(t) = xi(0) + C t.
    let problem = PaperDiffusion::default();
    let scheme = EulerScheme::new(problem, 0.1 / 5.0, OutputGrid::new(50, 5));
    let grid = scheme.grid();
    let h = scheme.h();
    let difftraj = RealizeFn::new(move |rng, out| scheme.realize_into(rng, out));

    let report = Parmonc::builder(50, 2)
        .max_sample_volume(2_000)
        .processors(4)
        .exchange(Exchange::EveryRealization)
        .output_dir(tempdir("diffusion"))
        .run(difftraj)
        .unwrap();

    for i in [0usize, 24, 49] {
        let t = grid.time(i, h);
        for j in 0..2 {
            let mean = report.summary.mean(i, j);
            let eps = report.summary.abs_error(i, j);
            let exact = problem.exact_mean(j, t);
            assert!(
                (mean - exact).abs() <= eps + 0.05,
                "t={t} j={j}: {mean} ± {eps} vs {exact}"
            );
        }
    }
    // Variance grows like D^2 t: later rows have larger error bars.
    assert!(report.summary.abs_error(49, 0) > report.summary.abs_error(0, 0));
}

#[test]
fn parallel_and_serial_runs_agree_within_error_bars() {
    // M = 1 and M = 4 use different processor streams, so estimates
    // differ — but both must cover the truth and each other within
    // combined 3-sigma bounds.
    let run = |m: usize, name: &str| {
        Parmonc::builder(1, 1)
            .max_sample_volume(100_000)
            .processors(m)
            .output_dir(tempdir(name))
            .run(PiEstimator)
            .unwrap()
    };
    let serial = run(1, "serial");
    let parallel = run(4, "parallel");
    assert_eq!(serial.total_volume, parallel.total_volume);
    let diff = (serial.summary.means[0] - parallel.summary.means[0]).abs();
    let bound = serial.summary.abs_errors[0] + parallel.summary.abs_errors[0];
    assert!(diff <= bound + 0.01, "diff {diff} > bound {bound}");
}

#[test]
fn branching_extinction_probability_end_to_end() {
    let gw = GaltonWatson::new(1.5, 150, 50_000);
    let report = Parmonc::builder(1, 2)
        .max_sample_volume(20_000)
        .processors(4)
        .output_dir(tempdir("branching"))
        .run(gw)
        .unwrap();
    let q_exact = gw.exact_extinction_probability();
    let q_est = report.summary.means[0];
    let eps = report.summary.abs_errors[0];
    assert!(
        (q_est - q_exact).abs() <= eps + 0.01,
        "q = {q_est} ± {eps} vs {q_exact}"
    );
}

#[test]
fn rng_streams_feed_workloads_deterministically() {
    // The whole stack is a pure function of (seqnum, M, maxsv).
    let run = |name: &str| {
        Parmonc::builder(1, 1)
            .max_sample_volume(10_000)
            .processors(3)
            .seqnum(9)
            .output_dir(tempdir(name))
            .run(PiEstimator)
            .unwrap()
    };
    let a = run("det-a");
    let b = run("det-b");
    assert_eq!(a.summary.means, b.summary.means);
    assert_eq!(a.summary.variances, b.summary.variances);
    assert_eq!(a.worker_volumes, b.worker_volumes);
}
