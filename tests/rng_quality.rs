//! RNG quality from the integration side: the statistical battery run
//! over the *stream types the runner actually hands to user code*, not
//! just the raw generator, plus the inter-stream guarantees that make
//! formula (5) valid.

use parmonc_rng::{LeapConfig, StreamHierarchy, StreamId};
use parmonc_rngtest::battery::{run_battery, run_cross_stream_battery, Scale};
use parmonc_rngtest::crossstream;

const ALPHA: f64 = 1e-3;

#[test]
fn realization_stream_passes_the_battery() {
    // The exact object a `Realize` routine draws from.
    let mut stream = StreamHierarchy::default()
        .realization_stream(StreamId::new(1, 2, 3))
        .unwrap();
    let report = run_battery(&mut stream, ALPHA, Scale::Standard);
    assert!(report.all_pass(), "{report}");
}

#[test]
fn cross_stream_battery_on_default_hierarchy() {
    let report = run_cross_stream_battery(&StreamHierarchy::default(), ALPHA, Scale::Standard);
    assert!(report.all_pass(), "{report}");
}

#[test]
fn streams_across_experiments_are_independent_too() {
    // seqnum isolation: experiment 0 and experiment 1 streams.
    let h = StreamHierarchy::default();
    let mut a = h.realization_stream(StreamId::new(0, 0, 0)).unwrap();
    let mut b = h.realization_stream(StreamId::new(1, 0, 0)).unwrap();
    let n = 100_000;
    let mut sum_ab = 0.0;
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    for _ in 0..n {
        let x = a.next_f64();
        let y = b.next_f64();
        sum_a += x;
        sum_b += y;
        sum_ab += x * y;
    }
    let nf = n as f64;
    let cov = sum_ab / nf - (sum_a / nf) * (sum_b / nf);
    // Var(U)·correlation/n scale: 3 sigma ≈ 3/(12·sqrt(n)).
    assert!(cov.abs() < 3.0 / (12.0 * nf.sqrt()) + 1e-4, "cov {cov}");
}

#[test]
fn hundreds_of_processor_streams_have_uniform_grand_mean() {
    let h = StreamHierarchy::default();
    let r = crossstream::test_grand_mean(&h, 256, 1_000);
    assert!(r.passes(ALPHA), "{r:?}");
}

#[test]
fn custom_genparam_hierarchy_still_passes_cross_tests() {
    // A user overriding the leaps with genparam must keep independence
    // (as long as the leaps nest).
    let cfg = LeapConfig::new(100, 80, 40).unwrap();
    let h = StreamHierarchy::new(cfg);
    let r = crossstream::test_cross_correlation(&h, 0, 1, 100_000);
    assert!(r.passes(ALPHA), "{r:?}");
    let r = crossstream::test_cross_uniformity(&h, 0, 1, 160_000, 16);
    assert!(r.passes(ALPHA), "{r:?}");
}
