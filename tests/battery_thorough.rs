//! Thorough-scale statistical verification (~10⁷–10⁹ draws per test).
//!
//! These mirror the `rng_battery --thorough` binary as ignored tests so
//! CI stays fast but the full-strength verification is one command
//! away:
//!
//! ```text
//! cargo test --release --test battery_thorough -- --ignored
//! ```

use parmonc_rng::{Lcg128, StreamHierarchy};
use parmonc_rngtest::battery::{run_battery, run_cross_stream_battery, Scale};

#[test]
#[ignore = "thorough scale: minutes of runtime; run with -- --ignored"]
fn lcg128_passes_thorough_battery() {
    let mut rng = Lcg128::new();
    let report = run_battery(&mut rng, 1e-4, Scale::Thorough);
    assert!(report.all_pass(), "{report}");
}

#[test]
#[ignore = "thorough scale: minutes of runtime; run with -- --ignored"]
fn cross_stream_thorough_battery() {
    let report = run_cross_stream_battery(&StreamHierarchy::default(), 1e-4, Scale::Thorough);
    assert!(report.all_pass(), "{report}");
}

#[test]
#[ignore = "thorough scale: samples deep into distinct processor streams"]
fn deep_stream_positions_stay_uniform() {
    // Draw 10^7 numbers from a late position of a far processor stream
    // and χ²-test uniformity — probing a region of the period far from
    // the default test windows.
    use parmonc_rng::StreamId;
    use parmonc_rngtest::uniformity::test_1d;
    let h = StreamHierarchy::default();
    let mut s = h
        .realization_stream(StreamId::new(1023, 131_071, 1 << 40))
        .unwrap();
    let r = test_1d(&mut s, 10_000_000, 1024);
    assert!(r.passes(1e-4), "{r:?}");
}
