//! The paper's evaluation claims (Section 4, Fig. 2) as executable
//! assertions on the discrete-event model, plus the capacity claims of
//! Section 2.4.

use parmonc_simcluster::figure2::{panel_series, Panel};
use parmonc_simcluster::{simulate, ClusterConfig};

#[test]
fn figure2_panels_reproduce_linear_speedup() {
    // "for all the values of L the speedup of parallelization is in
    // direct proportion to the number of processors despite 'strict'
    // conditions related to data exchange."
    for panel in Panel::ALL {
        let series = panel_series(panel);
        for w in series.windows(2) {
            let ratio_m = w[1].processors as f64 / w[0].processors as f64;
            for (i, &(l, t_small)) in w[0].points.iter().enumerate() {
                let ratio_t = t_small / w[1].points[i].1;
                assert!(
                    (ratio_t - ratio_m).abs() < 0.07 * ratio_m,
                    "panel {} L={l}: ratio {ratio_t:.3} vs {ratio_m}",
                    panel.letter()
                );
            }
        }
    }
}

#[test]
fn figure2_absolute_scale_matches_published_graphs() {
    // Panel (a): the M=1 curve tops out near 8000 s at L=1000 (7.7 s
    // per realization); panel (d): M=512 stays under ~1200 s at
    // L=75000.
    let a = panel_series(Panel::A);
    let t1_1000 = a[0].points.last().unwrap().1;
    assert!((7000.0..8500.0).contains(&t1_1000), "{t1_1000}");

    let d = panel_series(Panel::D);
    let t512_75000 = d[2].points.last().unwrap().1;
    assert!((1000.0..1300.0).contains(&t512_75000), "{t512_75000}");
}

#[test]
fn mean_realization_time_matches_tau() {
    // T_comp(M=1)/L must equal tau up to the single save cost.
    let c = ClusterConfig::paper_testbed(1);
    let r = simulate(&c, 500);
    let tau_eff = r.t_comp / 500.0;
    assert!((tau_eff - 7.7).abs() < 0.01, "{tau_eff}");
}

#[test]
fn strict_exchange_sends_one_message_per_realization() {
    // "All the processors sent data to the 0-th processor after having
    // simulated each realization."
    let c = ClusterConfig::paper_testbed(8);
    let r = simulate(&c, 800);
    // Workers 1..7 each simulate 100 realizations.
    assert_eq!(r.messages, 700);
}

#[test]
fn message_volume_matches_paper_order_of_magnitude() {
    // "the bulk of data which is periodically sent by every processor
    // ... is approximately 120 Kbytes": our model charges exactly that
    // per message; check the transfer takes ~1 ms on the modeled link.
    let c = ClusterConfig::paper_testbed(2);
    let transfer = c.transfer_seconds();
    assert!((0.5e-3..2e-3).contains(&transfer), "{transfer}");
    // ... which is negligible against tau = 7.7 s — the premise of the
    // linear-speedup result.
    assert!(transfer < 1e-3 * c.realization_seconds);
}

mod capacity_claims {
    //! Section 2.4's quantitative claims, verified against the RNG
    //! crate from the integration side.
    use parmonc_rng::multiplier::{order_exponent, DEFAULT_MULTIPLIER};
    use parmonc_rng::LeapConfig;

    #[test]
    fn period_is_2_pow_126() {
        assert_eq!(order_exponent(DEFAULT_MULTIPLIER), Some(126));
    }

    #[test]
    fn hierarchy_supports_paper_counts() {
        // ~10^3 experiments, ~10^5 processors, ~10^16 realizations.
        let c = LeapConfig::default();
        assert_eq!(c.experiments(), 1 << 10); // ≈ 10^3
        assert_eq!(c.processors(), 1 << 17); // ≈ 1.3·10^5
        assert_eq!(c.realizations(), 1 << 55); // ≈ 3.6·10^16
                                               // And one realization may draw 2^43 ≈ 8.8·10^12 numbers —
                                               // more than the *entire period* of the 40-bit generator the
                                               // paper cites as insufficient (2^38 ≈ 2.7·10^11).
        assert!(1u128 << c.nr() > 1u128 << 38);
    }
}
