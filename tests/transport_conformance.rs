//! Transport conformance: the thread and process backends must be
//! observationally equivalent.
//!
//! Because every rank completes exactly its assigned quota of
//! leapfrogged RNG streams, the estimates are *bit-identical* across
//! backends for the same configuration and seed — message timing and
//! ordering never enter the averaging. These tests pin that down, plus
//! the lifecycle guarantees of the process backend: every worker
//! process is reaped and the socket directory removed, even after a
//! fault-injected run.
//!
//! # Re-execution discipline
//!
//! `Transport::Processes` re-executes the current binary — here, this
//! libtest binary with a `[test_fn_name, "--exact"]` filter — so each
//! process-backend test function runs *again* inside every worker up to
//! the point where `run()` diverts into the worker loop. Three rules
//! follow:
//!
//! * output directories must be deterministic (no PID suffixes), or the
//!   workers would rebuild a different `RunConfig` than the parent;
//! * destructive setup (`remove_dir_all`) must be skipped in workers
//!   ([`parmonc::ipc::is_worker`]);
//! * in a test that runs both backends, the process run must come
//!   first, so workers divert before reaching the thread run.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use parmonc::prelude::{Exchange, Parmonc, ParmoncBuilder, RealizeFn, RunReport, Transport};
use parmonc_faults::FaultPlan;

/// Serializes the tests in this binary: each spawns child processes of
/// this same test process, so the no-orphan scan below must not see a
/// sibling test's (legitimate) workers.
static SEQ: Mutex<()> = Mutex::new(());

fn uniform() -> impl parmonc::Realize + Sync {
    RealizeFn::new(|rng, out| {
        for o in out.iter_mut() {
            *o = rng.next_f64();
        }
    })
}

/// A deterministic scratch dir (workers must rebuild the parent's exact
/// `RunConfig`, so no PID suffix), wiped only in the parent.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-conformance-{name}"));
    if !parmonc::ipc::is_worker() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    dir
}

/// A builder pre-wired for this libtest binary: the re-executed workers
/// get `[test_fn, "--exact"]` so they run exactly the spawning test.
fn builder_for(test_fn: &str, nrow: usize, ncol: usize) -> ParmoncBuilder {
    Parmonc::builder(nrow, ncol).worker_args([test_fn, "--exact"])
}

/// The set of event kinds in a run's monitor trace, every line
/// validated against the schema.
fn trace_kinds(report: &RunReport) -> BTreeSet<&'static str> {
    let path = report.results_dir.run_metrics_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            parmonc_obs::schema::validate_line(line)
                .unwrap_or_else(|e| panic!("schema violation in {line:?}: {e}"))
        })
        .collect()
}

/// Asserts the process backend left nothing behind: no live worker
/// children of this process, no zombies, and no `parmonc-ipc-*` socket
/// directories belonging to this PID.
fn assert_no_orphans() {
    let me = std::process::id();
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir("/proc").into_iter().flatten().flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Field 4 of /proc/pid/stat (after the parenthesized comm) is
        // the parent PID.
        let Some(after_comm) = stat.rsplit(')').next() else {
            continue;
        };
        let mut fields = after_comm.split_whitespace();
        let _state = fields.next();
        let Some(ppid) = fields.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if ppid != me {
            continue;
        }
        // Our only children are re-executed workers; any survivor with
        // the worker environment is an orphan.
        let environ = std::fs::read(format!("/proc/{pid}/environ")).unwrap_or_default();
        if environ
            .split(|&b| b == 0)
            .any(|kv| kv.starts_with(b"PARMONC_WORKER_RANK="))
        {
            orphans.push(pid);
        }
    }
    assert!(orphans.is_empty(), "orphaned worker processes: {orphans:?}");

    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&format!("parmonc-ipc-{me}-")))
        })
        .map(|e| e.path())
        .collect();
    assert!(
        leftovers.is_empty(),
        "socket dirs not removed: {leftovers:?}"
    );
}

/// Same config + seed on both backends: bit-identical estimates and the
/// same monitor event vocabulary. The process run comes first (see the
/// module docs) and must leave no orphans.
#[test]
fn process_and_thread_backends_agree() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: &str| {
        b.max_sample_volume(2_000)
            .processors(4)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(scratch(dir))
    };
    let processes = configure(
        builder_for("process_and_thread_backends_agree", 1, 2),
        "agree-processes",
    )
    .transport(Transport::Processes)
    .run(uniform())
    .unwrap();
    let threads = configure(
        builder_for("process_and_thread_backends_agree", 1, 2),
        "agree-threads",
    )
    .transport(Transport::Threads)
    .run(uniform())
    .unwrap();

    // Bit-identical estimates: the full averaged summary, not a
    // tolerance comparison.
    assert_eq!(processes.summary, threads.summary);
    assert_eq!(processes.total_volume, threads.total_volume);
    assert_eq!(processes.new_volume, threads.new_volume);
    assert_eq!(processes.worker_volumes, threads.worker_volumes);
    assert!(processes.lost_workers.is_empty());
    assert!(threads.lost_workers.is_empty());

    // Identical monitor event vocabularies (timing may reorder events,
    // but both backends must surface the same *kinds* of observability).
    assert_eq!(trace_kinds(&processes), trace_kinds(&threads));

    assert_no_orphans();
}

/// A fault-injected process run — one rank crashed, messages dropped —
/// still completes at full volume and still reaps every worker.
#[test]
fn faulted_process_run_shuts_down_cleanly() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let report = builder_for("faulted_process_run_shuts_down_cleanly", 1, 1)
        .max_sample_volume(2_000)
        .processors(4)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .faults(FaultPlan::new(7).crash_rank(2, 20).drop_fraction(0.05))
        .heartbeat_period(Duration::from_millis(10))
        .liveness_timeout(Duration::from_millis(300))
        .monitor()
        .transport(Transport::Processes)
        .output_dir(scratch("faulted-processes"))
        .run(uniform())
        .unwrap();

    assert!(
        report.new_volume >= 2_000,
        "volume {} must reach the target",
        report.new_volume
    );
    assert!(
        report.lost_workers.contains(&2),
        "expected rank 2 lost, got {:?}",
        report.lost_workers
    );
    assert!(report.reassigned_realizations > 0);

    assert_no_orphans();
}

/// The process backend honors resumption exactly like the thread
/// backend: on top of an identical thread-backend baseline run, a
/// `Resume::Resume` continuation on the process backend produces a
/// report bit-identical to a thread-backend continuation.
///
/// The baseline runs are guarded with [`parmonc::ipc::is_worker`]: a
/// re-executed worker must fall through straight to the (single)
/// process-backend `run()` call so it diverts with the continuation's
/// config, not the baseline's. A test function may contain only one
/// process-backend run for exactly this reason.
#[test]
fn process_backend_resumes_bit_identically() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    use parmonc::prelude::Resume;
    let run = |transport: Transport, dir: &'static str, resume: Resume, seqnum: u64| {
        builder_for("process_backend_resumes_bit_identically", 1, 1)
            .max_sample_volume(1_000)
            .processors(3)
            .seqnum(seqnum)
            .resume(resume)
            .transport(transport)
            .output_dir(scratch_keep(dir))
            .run(uniform())
            .unwrap()
    };
    if !parmonc::ipc::is_worker() {
        // Wipe once (scratch_keep never wipes: the continuation must
        // see the baseline's results), then lay down identical
        // thread-backend baselines for both continuations.
        for dir in ["resume-processes", "resume-threads"] {
            let _ = std::fs::remove_dir_all(scratch_keep(dir));
        }
        let _ = run(Transport::Threads, "resume-processes", Resume::New, 1);
        let _ = run(Transport::Threads, "resume-threads", Resume::New, 1);
    }
    let p = run(Transport::Processes, "resume-processes", Resume::Resume, 2);
    let t = run(Transport::Threads, "resume-threads", Resume::Resume, 2);

    assert_eq!(p.total_volume, 2_000);
    assert_eq!(p.resumed_volume, 1_000);
    assert_eq!(p.summary, t.summary);
    assert_eq!(p.total_volume, t.total_volume);
    assert_eq!(p.resumed_volume, t.resumed_volume);

    assert_no_orphans();
}

/// Like [`scratch`] but never wipes — for multi-run resumption tests
/// that wipe once themselves.
fn scratch_keep(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("parmonc-conformance-{name}"))
}
