//! Transport conformance: the thread, process, and TCP backends must
//! be observationally equivalent.
//!
//! Because every rank completes exactly its assigned quota of
//! leapfrogged RNG streams, the estimates are *bit-identical* across
//! backends for the same configuration and seed — message timing and
//! ordering never enter the averaging. These tests pin that down, plus
//! the lifecycle guarantees of the process backend: every worker
//! process is reaped and the socket directory removed, even after a
//! fault-injected run.
//!
//! The TCP backend's workers run here as in-process threads dialing
//! the collector over loopback — the wire conversation is the real
//! one, only the hosts are simulated. Its extra guarantees (elastic
//! mid-run joins stay bit-identical; a joiner after budget
//! reassignment is rejected cleanly) are covered at the end.
//!
//! # Re-execution discipline
//!
//! `Transport::Processes` re-executes the current binary — here, this
//! libtest binary with a `[test_fn_name, "--exact"]` filter — so each
//! process-backend test function runs *again* inside every worker up to
//! the point where `run()` diverts into the worker loop. Three rules
//! follow:
//!
//! * output directories must be deterministic (no PID suffixes), or the
//!   workers would rebuild a different `RunConfig` than the parent;
//! * destructive setup (`remove_dir_all`) must be skipped in workers
//!   ([`parmonc::ipc::is_worker`]);
//! * in a test that runs both backends, the process run must come
//!   first, so workers divert before reaching the thread run.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use parmonc::prelude::{
    Exchange, NetOptions, Parmonc, ParmoncBuilder, RealizeFn, RunReport, Topology, Transport,
};
use parmonc_faults::FaultPlan;

/// Serializes the tests in this binary: each spawns child processes of
/// this same test process, so the no-orphan scan below must not see a
/// sibling test's (legitimate) workers.
static SEQ: Mutex<()> = Mutex::new(());

fn uniform() -> impl parmonc::Realize + Sync {
    RealizeFn::new(|rng, out| {
        for o in out.iter_mut() {
            *o = rng.next_f64();
        }
    })
}

/// A deterministic scratch dir (workers must rebuild the parent's exact
/// `RunConfig`, so no PID suffix), wiped only in the parent.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmonc-conformance-{name}"));
    if !parmonc::ipc::is_worker() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    dir
}

/// A builder pre-wired for this libtest binary: the re-executed workers
/// get `[test_fn, "--exact"]` so they run exactly the spawning test.
fn builder_for(test_fn: &str, nrow: usize, ncol: usize) -> ParmoncBuilder {
    Parmonc::builder(nrow, ncol).worker_args([test_fn, "--exact"])
}

/// The set of event kinds in a run's monitor trace, every line
/// validated against the schema.
fn trace_kinds(report: &RunReport) -> BTreeSet<&'static str> {
    let path = report.results_dir.run_metrics_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            parmonc_obs::schema::validate_line(line)
                .unwrap_or_else(|e| panic!("schema violation in {line:?}: {e}"))
        })
        .collect()
}

/// Asserts the process backend left nothing behind: no live worker
/// children of this process, no zombies, and no `parmonc-ipc-*` socket
/// directories belonging to this PID.
fn assert_no_orphans() {
    let me = std::process::id();
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir("/proc").into_iter().flatten().flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Field 4 of /proc/pid/stat (after the parenthesized comm) is
        // the parent PID.
        let Some(after_comm) = stat.rsplit(')').next() else {
            continue;
        };
        let mut fields = after_comm.split_whitespace();
        let _state = fields.next();
        let Some(ppid) = fields.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if ppid != me {
            continue;
        }
        // Our only children are re-executed workers; any survivor with
        // the worker environment is an orphan.
        let environ = std::fs::read(format!("/proc/{pid}/environ")).unwrap_or_default();
        if environ
            .split(|&b| b == 0)
            .any(|kv| kv.starts_with(b"PARMONC_WORKER_RANK="))
        {
            orphans.push(pid);
        }
    }
    assert!(orphans.is_empty(), "orphaned worker processes: {orphans:?}");

    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&format!("parmonc-ipc-{me}-")))
        })
        .map(|e| e.path())
        .collect();
    assert!(
        leftovers.is_empty(),
        "socket dirs not removed: {leftovers:?}"
    );
}

/// Same config + seed on both backends: bit-identical estimates and the
/// same monitor event vocabulary. The process run comes first (see the
/// module docs) and must leave no orphans.
#[test]
fn process_and_thread_backends_agree() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: &str| {
        b.max_sample_volume(2_000)
            .processors(4)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(scratch(dir))
    };
    let processes = configure(
        builder_for("process_and_thread_backends_agree", 1, 2),
        "agree-processes",
    )
    .transport(Transport::Processes)
    .run(uniform())
    .unwrap();
    let threads = configure(
        builder_for("process_and_thread_backends_agree", 1, 2),
        "agree-threads",
    )
    .transport(Transport::Threads)
    .run(uniform())
    .unwrap();

    // Bit-identical estimates: the full averaged summary, not a
    // tolerance comparison.
    assert_eq!(processes.summary, threads.summary);
    assert_eq!(processes.total_volume, threads.total_volume);
    assert_eq!(processes.new_volume, threads.new_volume);
    assert_eq!(processes.worker_volumes, threads.worker_volumes);
    assert!(processes.lost_workers.is_empty());
    assert!(threads.lost_workers.is_empty());

    // Identical monitor event vocabularies (timing may reorder events,
    // but both backends must surface the same *kinds* of observability).
    // The socket backend additionally reports per-link wire telemetry,
    // which a shared-memory run has no wire to measure.
    let mut process_kinds = trace_kinds(&processes);
    assert!(
        process_kinds.remove("wire_stats"),
        "socket backend must flush its wire counters on shutdown"
    );
    assert_eq!(process_kinds, trace_kinds(&threads));

    // Worker-side sinks flushed cleanly on exit: nothing was silently
    // dropped, locally or on the forwarding path.
    let summary = processes.monitor.as_ref().expect("monitored run");
    assert_eq!(summary.dropped_events, 0);
    assert_eq!(summary.forwarded_dropped_events, 0);

    assert_no_orphans();
}

/// A fault-injected process run — one rank crashed, messages dropped —
/// still completes at full volume and still reaps every worker.
#[test]
fn faulted_process_run_shuts_down_cleanly() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let report = builder_for("faulted_process_run_shuts_down_cleanly", 1, 1)
        .max_sample_volume(2_000)
        .processors(4)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .faults(FaultPlan::new(7).crash_rank(2, 20).drop_fraction(0.05))
        .heartbeat_period(Duration::from_millis(10))
        .liveness_timeout(Duration::from_millis(300))
        .monitor()
        .transport(Transport::Processes)
        .output_dir(scratch("faulted-processes"))
        .run(uniform())
        .unwrap();

    assert!(
        report.new_volume >= 2_000,
        "volume {} must reach the target",
        report.new_volume
    );
    assert!(
        report.lost_workers.contains(&2),
        "expected rank 2 lost, got {:?}",
        report.lost_workers
    );
    assert!(report.reassigned_realizations > 0);

    // Even under injected faults the surviving workers flush their
    // sinks (and wire counters) on exit, and nothing was silently
    // dropped by a worker-side sink on the way out.
    assert!(
        trace_kinds(&report).contains("wire_stats"),
        "fault-injected run still flushed wire counters on exit"
    );
    let summary = report.monitor.as_ref().expect("monitored run");
    assert_eq!(summary.dropped_events, 0);
    assert_eq!(summary.forwarded_dropped_events, 0);

    assert_no_orphans();
}

/// The process backend honors resumption exactly like the thread
/// backend: on top of an identical thread-backend baseline run, a
/// `Resume::Resume` continuation on the process backend produces a
/// report bit-identical to a thread-backend continuation.
///
/// The baseline runs are guarded with [`parmonc::ipc::is_worker`]: a
/// re-executed worker must fall through straight to the (single)
/// process-backend `run()` call so it diverts with the continuation's
/// config, not the baseline's. A test function may contain only one
/// process-backend run for exactly this reason.
#[test]
fn process_backend_resumes_bit_identically() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    use parmonc::prelude::Resume;
    let run = |transport: Transport, dir: &'static str, resume: Resume, seqnum: u64| {
        builder_for("process_backend_resumes_bit_identically", 1, 1)
            .max_sample_volume(1_000)
            .processors(3)
            .seqnum(seqnum)
            .resume(resume)
            .transport(transport)
            .output_dir(scratch_keep(dir))
            .run(uniform())
            .unwrap()
    };
    if !parmonc::ipc::is_worker() {
        // Wipe once (scratch_keep never wipes: the continuation must
        // see the baseline's results), then lay down identical
        // thread-backend baselines for both continuations.
        for dir in ["resume-processes", "resume-threads"] {
            let _ = std::fs::remove_dir_all(scratch_keep(dir));
        }
        let _ = run(Transport::Threads, "resume-processes", Resume::New, 1);
        let _ = run(Transport::Threads, "resume-threads", Resume::New, 1);
    }
    let p = run(Transport::Processes, "resume-processes", Resume::Resume, 2);
    let t = run(Transport::Threads, "resume-threads", Resume::Resume, 2);

    assert_eq!(p.total_volume, 2_000);
    assert_eq!(p.resumed_volume, 1_000);
    assert_eq!(p.summary, t.summary);
    assert_eq!(p.total_volume, t.total_volume);
    assert_eq!(p.resumed_volume, t.resumed_volume);

    assert_no_orphans();
}

/// Like [`scratch`] but never wipes — for multi-run resumption tests
/// that wipe once themselves.
fn scratch_keep(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("parmonc-conformance-{name}"))
}

/// Waits for a TCP collector to record its bound address in
/// `parmonc_data/collector.addr` (the ephemeral-port discovery path).
fn wait_for_addr(dir: &std::path::Path) -> String {
    let path = dir.join("parmonc_data").join("collector.addr");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "collector never wrote {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Same config + seed over TCP (remote workers dialing loopback) and
/// threads: bit-identical estimates, and the TCP trace's vocabulary is
/// exactly the thread run's plus the membership events.
#[test]
fn tcp_and_thread_backends_agree() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(2_000)
            .processors(3)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(dir)
    };
    let collector_dir = scratch("tcp-agree-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            // Each worker writes to its own directory, as a remote
            // host would (the config digest does not cover paths).
            let dir = scratch(&format!("tcp-agree-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 2), dir)
                    .net(NetOptions::join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let tcp = collector.join().unwrap().unwrap();
    let threads = configure(Parmonc::builder(1, 2), scratch("tcp-agree-threads"))
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();

    assert_eq!(tcp.summary, threads.summary);
    assert_eq!(tcp.total_volume, threads.total_volume);
    assert_eq!(tcp.new_volume, threads.new_volume);
    assert_eq!(tcp.worker_volumes, threads.worker_volumes);
    assert!(tcp.lost_workers.is_empty());

    // The TCP vocabulary is the thread vocabulary plus membership and
    // per-link wire telemetry.
    let mut tcp_kinds = trace_kinds(&tcp);
    assert!(tcp_kinds.remove("worker_joined"), "join events recorded");
    assert!(tcp_kinds.remove("worker_left"), "leave events recorded");
    assert!(tcp_kinds.remove("wire_stats"), "wire counters recorded");
    assert_eq!(tcp_kinds, trace_kinds(&threads));

    let summary = tcp.monitor.expect("monitored run");
    assert_eq!(summary.workers_joined, 2);
    assert_eq!(summary.workers_left, 2);
}

/// Elastic membership: a worker that joins well after the run started
/// is dealt its untouched leapfrog stream range, so the estimate is
/// bit-identical to an equivalent fixed-membership (thread) run.
#[test]
fn mid_run_tcp_joiner_keeps_estimates_bit_identical() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(1_500)
            .processors(3)
            .seqnum(9)
            .monitor()
            .output_dir(dir)
    };
    let collector_dir = scratch("tcp-midjoin-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(2, 1), dir)
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let spawn_worker = |i: usize, delay: Duration| {
        let addr = addr.clone();
        let dir = scratch(&format!("tcp-midjoin-worker{i}"));
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            configure(Parmonc::builder(2, 1), dir)
                .net(NetOptions::join(addr))
                .run_worker(uniform())
        })
    };
    // The first worker joins immediately; the second long after the
    // collector has finished its own quota and is waiting on finals.
    let prompt = spawn_worker(0, Duration::ZERO);
    let late = spawn_worker(1, Duration::from_millis(400));
    prompt.join().unwrap().unwrap();
    late.join().unwrap().unwrap();
    let tcp = collector.join().unwrap().unwrap();

    let threads = configure(Parmonc::builder(2, 1), scratch("tcp-midjoin-threads"))
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();

    assert!(tcp.lost_workers.is_empty(), "lost: {:?}", tcp.lost_workers);
    assert_eq!(tcp.worker_volumes, threads.worker_volumes);
    assert_eq!(tcp.total_volume, threads.total_volume);
    assert_eq!(tcp.summary, threads.summary);
    let summary = tcp.monitor.expect("monitored run");
    assert_eq!(summary.workers_joined, 2);
}

/// A fault-injected TCP run — one remote worker crashes mid-quota and
/// a fraction of messages are dropped — still completes at full
/// volume: the lost rank's budget is reassigned over the wire exactly
/// as on the in-process backends.
#[test]
fn faulted_tcp_run_completes_at_full_volume() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(2_000)
            .processors(3)
            .seqnum(6)
            .exchange(Exchange::EveryRealization)
            .faults(FaultPlan::new(11).crash_rank(2, 20).drop_fraction(0.05))
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(300))
            .output_dir(dir)
    };
    let collector_dir = scratch("tcp-faulted-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 1), dir)
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let dir = scratch(&format!("tcp-faulted-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 1), dir)
                    .net(NetOptions::join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();
    for w in workers {
        // The crashed worker's loop also returns cleanly: the crash is
        // its *silence*, which the collector must detect remotely.
        w.join().unwrap().unwrap();
    }
    let report = collector.join().unwrap().unwrap();

    assert!(
        report.new_volume >= 2_000,
        "volume {} must reach the target",
        report.new_volume
    );
    assert!(
        report.lost_workers.contains(&2),
        "expected rank 2 lost, got {:?}",
        report.lost_workers
    );
    assert!(report.reassigned_realizations > 0);
}

/// A worker that dials in after its stream range's budget was
/// reassigned (the slot went quiet past the liveness timeout) is
/// rejected cleanly — admitting it would double-count realizations —
/// and the run still completes at full volume without it.
#[test]
fn tcp_joiner_after_budget_reassignment_is_rejected() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(3_000)
            .processors(2)
            .seqnum(4)
            .heartbeat_period(Duration::from_millis(10))
            .liveness_timeout(Duration::from_millis(200))
            .output_dir(dir)
    };
    // Slow realizations keep the collector busy long enough for the
    // unjoined slot to be declared lost mid-run.
    let slow = || {
        RealizeFn::new(|rng, out| {
            std::thread::sleep(Duration::from_micros(500));
            for o in out.iter_mut() {
                *o = rng.next_f64();
            }
        })
    };
    let collector_dir = scratch("tcp-exhausted-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 1), dir)
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(slow())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    // Wait past the liveness timeout so the never-joined slot's budget
    // has been reassigned (to the collector itself), then try to join.
    std::thread::sleep(Duration::from_millis(600));
    let err = configure(Parmonc::builder(1, 1), scratch("tcp-exhausted-worker"))
        .net(NetOptions::join(addr))
        .run_worker(slow())
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("rejected") && msg.contains("BudgetExhausted"),
        "expected a clean budget rejection, got: {msg}"
    );

    let report = collector.join().unwrap().unwrap();
    assert_eq!(
        report.new_volume, 3_000,
        "the collector absorbed the budget"
    );
    assert_eq!(report.lost_workers, vec![1]);
}

/// The full resilience story in one run: a worker's link is severed
/// mid-run by the fault plane and heals via the seeded reconnect, the
/// collector itself crashes (scripted) mid-run, and a second collector
/// process resumes the session with `resume_listen` — same epoch, same
/// leases, accumulation restarted from the original baseline. The
/// surviving workers rejoin, re-send their cumulative subtotals
/// (idempotent under replace-then-sum), and the run completes with
/// estimates *bit-identical* to a fault-free thread-backend run.
#[test]
fn severed_and_collector_crashed_tcp_run_resumes_bit_identically() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    use parmonc::ParmoncError;
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(3_000)
            .processors(3)
            .seqnum(7)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(dir)
    };
    // Generous retry budget: the workers must ride out the whole
    // collector outage (crash detection + restart) on their backoff.
    let tuned_join = |addr: String| {
        NetOptions::join(addr)
            .reconnect_attempts(200)
            .reconnect_base_delay(Duration::from_millis(10))
            .reconnect_max_delay(Duration::from_millis(100))
    };
    let collector_dir = scratch("tcp-resume-collector");
    // Worker 1's link is severed at its 40th frame (it reconnects and
    // rejoins on its own); the collector crashes after 50 of its own
    // realizations — early enough that both workers are mid-quota.
    let crashing_plan = || FaultPlan::new(13).sever_connection(1, 40).crash_rank(0, 50);
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .faults(crashing_plan())
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let dir = scratch(&format!("tcp-resume-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 2), dir)
                    .faults(crashing_plan())
                    .net(tuned_join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();

    // The first collector incarnation dies by script...
    let err = collector.join().unwrap().unwrap_err();
    assert!(
        matches!(err, ParmoncError::CollectorCrashed { .. }),
        "expected the scripted collector crash, got: {err}"
    );
    // ... and a second one resumes the session on the same address and
    // output directory, with a crash-free plan. The workers' reconnect
    // backoff covers the gap.
    let resumed = {
        let dir = collector_dir.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .net(NetOptions::resume_listen(addr))
                .run(uniform())
        })
    };
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let tcp = resumed.join().unwrap().unwrap();

    let threads = configure(Parmonc::builder(1, 2), scratch("tcp-resume-threads"))
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();

    assert!(tcp.lost_workers.is_empty(), "lost: {:?}", tcp.lost_workers);
    assert_eq!(
        tcp.summary, threads.summary,
        "estimates must survive the crash bit-identically"
    );
    assert_eq!(tcp.total_volume, threads.total_volume);
    assert_eq!(tcp.worker_volumes, threads.worker_volumes);

    // The resumed trace records the resume and the workers' rejoins.
    let kinds = trace_kinds(&tcp);
    assert!(kinds.contains("collector_resumed"), "kinds: {kinds:?}");
    assert!(kinds.contains("worker_reconnected"), "kinds: {kinds:?}");
}

/// Parses a run's full event trace (every line schema-validated by
/// construction of [`parmonc_obs::schema::parse_line`]).
fn trace_events(report: &RunReport) -> Vec<parmonc_obs::Event> {
    let path = report.results_dir.run_metrics_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    text.lines()
        .map(|line| {
            parmonc_obs::schema::parse_line(line)
                .unwrap_or_else(|e| panic!("invalid trace line {line:?}: {e}"))
        })
        .collect()
}

/// Span tracing is pure observability: turning it on must not move a
/// single bit of the estimate on any backend. One config runs traced
/// over processes, TCP, and threads, plus an untraced thread baseline —
/// all four reports must be bit-identical, and only the traced runs may
/// carry span events.
#[test]
fn span_tracing_keeps_estimates_bit_identical_across_backends() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(2_000)
            .processors(3)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(dir)
    };
    // The (single) process-backend run comes first: re-executed workers
    // divert here before reaching the thread and TCP runs below.
    let traced_processes = configure(
        builder_for(
            "span_tracing_keeps_estimates_bit_identical_across_backends",
            1,
            2,
        ),
        scratch("spans-processes"),
    )
    .trace_spans()
    .transport(Transport::Processes)
    .run(uniform())
    .unwrap();

    let plain = configure(Parmonc::builder(1, 2), scratch("spans-plain"))
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();
    let traced_threads = configure(Parmonc::builder(1, 2), scratch("spans-threads"))
        .trace_spans()
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();

    // Traced TCP run: span tracing is the *collector's* choice — the
    // workers never set the flag and pick it up from the handshake
    // grant.
    let collector_dir = scratch("spans-tcp-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .trace_spans()
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            let dir = scratch(&format!("spans-tcp-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 2), dir)
                    .net(NetOptions::join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let traced_tcp = collector.join().unwrap().unwrap();

    for traced in [&traced_processes, &traced_threads, &traced_tcp] {
        assert_eq!(traced.summary, plain.summary);
        assert_eq!(traced.total_volume, plain.total_volume);
        assert_eq!(traced.worker_volumes, plain.worker_volumes);
    }

    // Spans present exactly where tracing was requested...
    for traced in [&traced_processes, &traced_threads, &traced_tcp] {
        let kinds = trace_kinds(traced);
        assert!(kinds.contains("span_started"), "kinds: {kinds:?}");
        assert!(kinds.contains("span_ended"), "kinds: {kinds:?}");
    }
    assert!(!trace_kinds(&plain).contains("span_started"));

    // ... and the TCP collector's trace carries *worker* spans too:
    // grant-propagated tracing made the remote ranks record their
    // phases, forwarded onto the collector's one run clock.
    let worker_spans = trace_events(&traced_tcp)
        .iter()
        .filter(|e| {
            matches!(e.kind, parmonc_obs::EventKind::SpanStarted { .. })
                && e.rank.is_some_and(|r| r > 0)
        })
        .count();
    assert!(worker_spans > 0, "no forwarded worker spans in TCP trace");

    assert_no_orphans();
}

/// Deterministic injected clock skew over TCP: each worker's monitor
/// clock is offset by a known amount, and the collector must fold the
/// forwarded events back onto its own run clock. Normalized timestamps
/// stay monotone per rank, the raw local timestamp is preserved
/// alongside, and the recovered per-link offset matches the injected
/// skew within the handshake's estimation bound. The estimates are
/// untouched — skew is a clock property, never a payload one.
#[test]
fn tcp_clock_skew_is_normalized_on_the_collector() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(2_000)
            .processors(3)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(dir)
    };
    const SKEWS: [f64; 2] = [0.75, -0.5];
    let collector_dir = scratch("tcp-skew-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .trace_spans()
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = SKEWS
        .iter()
        .enumerate()
        .map(|(i, &skew)| {
            let addr = addr.clone();
            let dir = scratch(&format!("tcp-skew-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 2), dir)
                    .clock_skew(skew)
                    .net(NetOptions::join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let tcp = collector.join().unwrap().unwrap();

    let threads = configure(Parmonc::builder(1, 2), scratch("tcp-skew-threads"))
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();
    assert_eq!(tcp.summary, threads.summary, "skew must not touch payloads");
    assert_eq!(tcp.total_volume, threads.total_volume);

    // On loopback the RTT-symmetric estimate is tight; the admission
    // seed (one handshake leg) bounds the transient before the first
    // probe lands.
    const OFFSET_BOUND_S: f64 = 0.25;
    let events = trace_events(&tcp);
    let mut recovered_skews = Vec::new();
    for rank in [1usize, 2] {
        let forwarded: Vec<&parmonc_obs::Event> = events
            .iter()
            .filter(|e| e.rank == Some(rank) && e.raw_time_s.is_some())
            .collect();
        assert!(
            forwarded.len() >= 4,
            "rank {rank}: only {} forwarded events carry raw_time_s",
            forwarded.len()
        );
        // Normalized timestamps are monotone per rank even though the
        // worker's raw clock is offset.
        for pair in forwarded.windows(2) {
            assert!(
                pair[1].time_s >= pair[0].time_s,
                "rank {rank}: normalized clock went backwards ({} -> {})",
                pair[0].time_s,
                pair[1].time_s
            );
        }
        // raw − normalized recovers the injected skew of whichever
        // worker holds this rank (lease order is not deterministic, so
        // match the multiset below rather than the pairing here).
        let offsets: Vec<f64> = forwarded
            .iter()
            .map(|e| e.raw_time_s.unwrap() - e.time_s)
            .collect();
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        for o in &offsets {
            assert!(
                (o - mean).abs() <= OFFSET_BOUND_S,
                "rank {rank}: offset wandered beyond the bound: {o} vs mean {mean}"
            );
        }
        recovered_skews.push(mean);
    }
    recovered_skews.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut expected = SKEWS;
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (got, want) in recovered_skews.iter().zip(expected) {
        assert!(
            (got - want).abs() <= OFFSET_BOUND_S,
            "recovered skew {got} differs from injected {want}"
        );
    }
}

/// Collection topology is pure routing: a binary reduction tree
/// (ranks 1 and 2 acting as relays for ranks 3..=6) must produce
/// estimates bit-identical to the default rank-0 star, and surface the
/// same monitor event vocabulary, on both in-process backends. The
/// (single) process run comes first — see the module docs.
#[test]
fn tree_topology_agrees_with_star_on_thread_and_process_backends() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: &str| {
        b.max_sample_volume(2_100)
            .processors(7)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(scratch(dir))
    };
    let tree_processes = configure(
        builder_for(
            "tree_topology_agrees_with_star_on_thread_and_process_backends",
            1,
            2,
        ),
        "tree-processes",
    )
    .topology(Topology::Tree { arity: 2 })
    .transport(Transport::Processes)
    .run(uniform())
    .unwrap();
    let tree_threads = configure(Parmonc::builder(1, 2), "tree-threads")
        .topology(Topology::Tree { arity: 2 })
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();
    let star_threads = configure(Parmonc::builder(1, 2), "tree-star-baseline")
        .transport(Transport::Threads)
        .run(uniform())
        .unwrap();

    for tree in [&tree_processes, &tree_threads] {
        assert_eq!(tree.summary, star_threads.summary);
        assert_eq!(tree.total_volume, star_threads.total_volume);
        assert_eq!(tree.new_volume, star_threads.new_volume);
        assert_eq!(tree.worker_volumes, star_threads.worker_volumes);
        assert!(tree.lost_workers.is_empty());
    }

    // Same observability vocabulary as the star on the same substrate;
    // the socket backend's wire telemetry is its usual extra.
    assert_eq!(trace_kinds(&tree_threads), trace_kinds(&star_threads));
    let mut process_kinds = trace_kinds(&tree_processes);
    assert!(process_kinds.remove("wire_stats"));
    assert_eq!(process_kinds, trace_kinds(&star_threads));

    assert_no_orphans();
}

/// The same tree-vs-star conformance over TCP: four remote workers
/// dial loopback, rank 1 relays for ranks 3 and 4 (a depth-2 tree),
/// and the estimate matches a star thread run bit for bit. The
/// topology rides the handshake: workers configure the same shape or
/// the digest check rejects them.
#[test]
fn tree_topology_agrees_with_star_over_tcp() {
    let _guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let configure = |b: ParmoncBuilder, dir: PathBuf| {
        b.max_sample_volume(2_000)
            .processors(5)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .topology(Topology::Tree { arity: 2 })
            .monitor()
            .output_dir(dir)
    };
    let collector_dir = scratch("tcp-tree-collector");
    let collector = {
        let dir = collector_dir.clone();
        std::thread::spawn(move || {
            configure(Parmonc::builder(1, 2), dir)
                .net(NetOptions::listen("127.0.0.1:0"))
                .run(uniform())
        })
    };
    let addr = wait_for_addr(&collector_dir);
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            let dir = scratch(&format!("tcp-tree-worker{i}"));
            std::thread::spawn(move || {
                configure(Parmonc::builder(1, 2), dir)
                    .net(NetOptions::join(addr))
                    .run_worker(uniform())
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    let tcp_tree = collector.join().unwrap().unwrap();

    // Star baseline on threads: topology must not move the estimate.
    let star_threads = {
        let b = Parmonc::builder(1, 2)
            .max_sample_volume(2_000)
            .processors(5)
            .seqnum(5)
            .exchange(Exchange::EveryRealization)
            .monitor()
            .output_dir(scratch("tcp-tree-star-baseline"));
        b.transport(Transport::Threads).run(uniform()).unwrap()
    };

    assert_eq!(tcp_tree.summary, star_threads.summary);
    assert_eq!(tcp_tree.total_volume, star_threads.total_volume);
    assert_eq!(tcp_tree.new_volume, star_threads.new_volume);
    assert_eq!(tcp_tree.worker_volumes, star_threads.worker_volumes);
    assert!(tcp_tree.lost_workers.is_empty());

    // The TCP vocabulary is the star thread vocabulary plus its usual
    // membership and wire extras — routing through a relay must not
    // add or lose an event kind.
    let mut tcp_kinds = trace_kinds(&tcp_tree);
    assert!(tcp_kinds.remove("worker_joined"));
    assert!(tcp_kinds.remove("worker_left"));
    assert!(tcp_kinds.remove("wire_stats"));
    assert_eq!(tcp_kinds, trace_kinds(&star_threads));

    let summary = tcp_tree.monitor.expect("monitored run");
    assert_eq!(summary.workers_joined, 4);
    assert_eq!(summary.workers_left, 4);
}
