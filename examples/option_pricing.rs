//! Financial mathematics with PARMONC: Monte Carlo pricing of European
//! calls against the Black–Scholes closed form, with error-controlled
//! stopping — the runner keeps simulating only until the price is
//! pinned to the requested absolute accuracy.
//!
//! ```text
//! cargo run --release --example option_pricing
//! ```

use std::time::Duration;

use parmonc::prelude::{Parmonc, ParmoncError};
use parmonc_apps::EuropeanCall;

fn main() -> Result<(), ParmoncError> {
    println!("European calls, S0 = 100, r = 5%, sigma = 20%, T = 1y;");
    println!("error-controlled stopping at eps = 0.05 (3-sigma):");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12}",
        "strike", "MC price", "±eps", "BS price", "L used"
    );
    for (i, strike) in [80.0, 90.0, 100.0, 110.0, 120.0].into_iter().enumerate() {
        let option = EuropeanCall::new(100.0, strike, 0.05, 0.2, 1.0);
        let report = Parmonc::builder(1, 1)
            .max_sample_volume(5_000_000) // effectively "until accurate"
            .processors(4)
            .seqnum(i as u64)
            .target_abs_error(0.05)
            .pass_period(Duration::from_millis(20))
            .averaging_period(Duration::from_millis(50))
            .output_dir(std::env::temp_dir().join(format!("parmonc-option-{i}")))
            .run(option)?;
        println!(
            "{strike:>8.0} {:>12.4} {:>10.4} {:>12.4} {:>12}",
            report.summary.means[0],
            report.summary.abs_errors[0],
            option.black_scholes_price(),
            report.new_volume,
        );
    }
    println!("\n(deeper in the money → larger payoff variance → more realizations");
    println!(" needed for the same absolute error: the L column shows the");
    println!(" error-controlled stopping adapting the sample volume per strike.)");
    Ok(())
}
