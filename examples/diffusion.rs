//! The paper's Section 4 performance test: the `parmoncc(difftraj, …)`
//! listing, at laptop scale.
//!
//! The paper runs the 2-D linear SDE `dξ = C dt + D dw` over [0, 100]
//! with Euler mesh h = 10⁻⁶ (10⁸ steps, τ_ζ ≈ 7.7 s per realization)
//! and records a 1000×2 matrix of `ξ(t_i)` at `t_i = 0.1 i`. This
//! example keeps the exact program structure — including `nrow = 1000`,
//! `ncol = 2`, `res`, `seqnum`, `perpass`, `peraver` — but uses a
//! coarser mesh so it finishes in seconds, and checks the estimates
//! against the closed-form mean `Eξ(t) = ξ(0) + C·t`.
//!
//! ```text
//! cargo run --release --example diffusion
//! ```

use std::time::Duration;

use parmonc::prelude::{Exchange, Parmonc, ParmoncError, RealizeFn};
use parmonc_sde::{EulerScheme, OutputGrid, PaperDiffusion};

fn main() -> Result<(), ParmoncError> {
    // The paper's listing, transcribed:
    let nrow = 1000; // output time points
    let ncol = 2; // SDE components
    let maxsv: u64 = 400; // paper uses 10^9 ("endless"); we keep it finite
    let seqnum = 2;
    let perpass = Duration::from_secs(10 * 60); // 10 minutes
    let peraver = Duration::from_secs(20 * 60); // 20 minutes

    let problem = PaperDiffusion::default();
    // stride = 20 steps between output points (the paper: 10^5).
    let scheme = EulerScheme::new(problem, 0.1 / 20.0, OutputGrid::new(nrow, 20));
    let grid = scheme.grid();
    let h = scheme.h();

    // difftraj: one realization of the approximate diffusion trajectory
    // by the generalized Euler method (paper formula (9)).
    let difftraj = RealizeFn::new(move |rng, out| scheme.realize_into(rng, out));

    let report = Parmonc::builder(nrow, ncol)
        .max_sample_volume(maxsv)
        .seqnum(seqnum)
        .processors(4)
        .pass_period(perpass)
        .averaging_period(peraver)
        .exchange(Exchange::EveryRealization) // the paper's strict mode
        .output_dir(std::env::temp_dir().join("parmonc-diffusion"))
        .run(difftraj)?;

    println!(
        "L = {} trajectories on {} processors in {:.2?} (tau = {:.4} ms)",
        report.total_volume,
        report.processors,
        report.elapsed,
        report.mean_time_per_realization * 1e3,
    );
    println!("E xi_j(t) vs exact xi(0) + C t  (every 200th output point):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "t", "mean_1", "exact_1", "mean_2", "exact_2"
    );
    for i in (199..nrow).step_by(200) {
        let t = grid.time(i, h);
        println!(
            "{t:>8.1} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            report.summary.mean(i, 0),
            problem.exact_mean(0, t),
            report.summary.mean(i, 1),
            problem.exact_mean(1, t),
        );
    }
    println!(
        "eps_max = {:.4}, sigma2_max = {:.4} (exact Var xi_j(100) = {:.4})",
        report.summary.eps_max,
        report.summary.sigma2_max,
        problem.exact_variance(0, 100.0),
    );
    Ok(())
}
