//! Chaos demo: a run that survives a worker crash and lost messages.
//!
//! A seeded [`FaultPlan`] scripts the failures deterministically: rank 3
//! dies after 25 realizations and 5 % of all messages vanish. The
//! collector declares the silent rank dead after the liveness timeout,
//! keeps its last cumulative subtotal (unbiased — see
//! `docs/fault-tolerance.md`), and reassigns the unfinished budget to
//! the survivors on their own fresh leapfrog streams, so the run still
//! completes at full volume with honest error bars.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use std::time::Duration;

use parmonc::prelude::{Exchange, Parmonc, ParmoncError, RealizeFn};
use parmonc_faults::FaultPlan;

fn main() -> Result<(), ParmoncError> {
    let realization = RealizeFn::new(|rng, out| {
        let (x, y) = (rng.next_f64(), rng.next_f64());
        out[0] = if x * x + y * y < 1.0 { 4.0 } else { 0.0 };
    });

    let report = Parmonc::builder(1, 1)
        .max_sample_volume(20_000)
        .processors(8)
        .seqnum(3)
        .exchange(Exchange::EveryRealization)
        .faults(FaultPlan::new(2024).crash_rank(3, 25).drop_fraction(0.05))
        .heartbeat_period(Duration::from_millis(10))
        .liveness_timeout(Duration::from_millis(150))
        .monitor()
        .output_dir("chaos-run")
        .run(realization)?;

    println!(
        "pi ~ {:.6} +/- {:.6} from {} realizations",
        report.summary.means[0], report.summary.abs_errors[0], report.new_volume
    );
    println!(
        "lost workers: {:?}; {} realizations reassigned to survivors",
        report.lost_workers, report.reassigned_realizations
    );
    if let Some(summary) = &report.monitor {
        println!();
        println!("{}", summary.render_table());
        println!(
            "event trace in {} (metrics in {})",
            report.results_dir.run_metrics_path().display(),
            report.results_dir.metrics_prom_path().display()
        );
    }
    Ok(())
}
