//! Queueing theory with PARMONC: mean waiting time of an M/M/1 queue
//! across utilization levels, against the exact `ρ / (μ − λ)`.
//!
//! ```text
//! cargo run --release --example queueing
//! ```

use parmonc::prelude::{Parmonc, ParmoncError};
use parmonc_apps::MM1Queue;

fn main() -> Result<(), ParmoncError> {
    println!("M/M/1 mean waiting time, mu = 1.0, 2000 customers per realization:");
    println!(
        "{:>6} {:>14} {:>10} {:>14} {:>14}",
        "rho", "E[wait] est", "±3sigma", "E[wait] exact", "P(delay) est"
    );
    for (i, lambda) in [0.2, 0.4, 0.6, 0.8].into_iter().enumerate() {
        let queue = MM1Queue::new(lambda, 1.0, 2_000, 400);
        let report = Parmonc::builder(1, 2)
            .max_sample_volume(2_000)
            .processors(4)
            .seqnum(i as u64)
            .output_dir(std::env::temp_dir().join(format!("parmonc-queue-{i}")))
            .run(queue)?;
        let s = &report.summary;
        println!(
            "{:>6.1} {:>14.4} {:>10.4} {:>14.4} {:>14.4}",
            queue.rho(),
            s.means[0],
            s.abs_errors[0],
            queue.exact_mean_wait(),
            s.means[1],
        );
    }
    println!("\n(finite-horizon bias pulls the estimate slightly below the");
    println!(" steady-state value at high rho; grow `customers` to converge)");
    Ok(())
}
