//! Quickstart: estimate π with PARMONC in a dozen lines.
//!
//! The user supplies one sequential routine (simulate a single
//! realization, drawing base random numbers from the stream); PARMONC
//! parallelizes it, averages, and writes error bars — no MPI in sight.
//! The run monitor is attached, so the run also records an event trace
//! (`parmonc_data/monitor/run_metrics.jsonl`, schema in
//! `docs/observability.md`) and prints the summary table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parmonc::prelude::{Parmonc, ParmoncError, RealizeFn};

fn main() -> Result<(), ParmoncError> {
    // One realization: zeta = 4 * 1{x^2 + y^2 < 1}, so E[zeta] = pi.
    let realization = RealizeFn::new(|rng, out| {
        let (x, y) = (rng.next_f64(), rng.next_f64());
        out[0] = if x * x + y * y < 1.0 { 4.0 } else { 0.0 };
    });

    let report = Parmonc::builder(1, 1)
        .max_sample_volume(1_000_000)
        .processors(4)
        .output_dir(std::env::temp_dir().join("parmonc-quickstart"))
        .monitor()
        .run(realization)?;

    println!(
        "pi ≈ {:.6} ± {:.6}  (L = {}, relative error {:.3}%)",
        report.summary.means[0],
        report.summary.abs_errors[0],
        report.total_volume,
        report.summary.rel_errors_percent[0],
    );
    println!(
        "exact  {:.6}  (inside the 0.997 confidence interval: {})",
        std::f64::consts::PI,
        (report.summary.means[0] - std::f64::consts::PI).abs() <= report.summary.abs_errors[0]
    );
    println!("result files in {}", report.results_dir.root().display());
    if let Some(summary) = &report.monitor {
        println!();
        println!("{}", summary.render_table());
        println!(
            "event trace in {}",
            report.results_dir.run_metrics_path().display()
        );
    }
    Ok(())
}
