//! Chemical kinetics with PARMONC: exact Gillespie SSA trajectories of
//! an immigration–death network, averaged over processors, against the
//! closed-form Poissonian transient.
//!
//! ```text
//! cargo run --release --example kinetics
//! ```

use parmonc::prelude::{Parmonc, ParmoncError};
use parmonc_apps::ImmigrationDeath;

fn main() -> Result<(), ParmoncError> {
    // ∅ → X at rate 10, X → ∅ at rate 1·#X: stationary mean 10.
    let model = ImmigrationDeath::new(10.0, 1.0, 0, 5.0, 10);
    let report = Parmonc::builder(model.points, 1)
        .max_sample_volume(20_000)
        .processors(4)
        .output_dir(std::env::temp_dir().join("parmonc-kinetics"))
        .run(model)?;

    println!(
        "immigration–death SSA: k_prod = {}, k_deg = {}, {} trajectories",
        model.k_prod, model.k_deg, report.total_volume
    );
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "t", "E[#X] est", "±3sigma", "E[#X] exact", "Var est", "Var exact"
    );
    for i in 0..model.points {
        let t = model.observation_time(i);
        println!(
            "{t:>6.1} {:>12.4} {:>10.4} {:>12.4} {:>12.4} {:>12.4}",
            report.summary.mean(i, 0),
            report.summary.abs_error(i, 0),
            model.exact_mean(t),
            report.summary.variances[i],
            model.exact_variance(t),
        );
    }
    println!("\n(#X(t) is exactly Poisson when X(0) = 0, so Var = mean — both");
    println!(" columns converge to the stationary value k_prod/k_deg = 10.)");
    Ok(())
}
