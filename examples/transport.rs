//! Radiation transport through a 1-D slab — the application domain
//! Monte Carlo was invented for, run through the PARMONC pipeline.
//!
//! Sweeps the slab thickness and prints transmission / reflection /
//! absorption probabilities with their 3σ error bars; for the purely
//! absorbing configuration the exact Beer–Lambert transmission
//! `e^{-Σ L}` is printed alongside.
//!
//! ```text
//! cargo run --release --example transport
//! ```

use parmonc::prelude::{Parmonc, ParmoncError};
use parmonc_apps::SlabTransport;

fn main() -> Result<(), ParmoncError> {
    println!("scattering slab (sigma_t = 1.0, sigma_a = 0.3), 200k particles per row:");
    println!(
        "{:>10} {:>22} {:>22} {:>22}",
        "thickness", "P(transmit)", "P(reflect)", "P(absorb)"
    );
    for (i, thickness) in [0.5, 1.0, 2.0, 4.0].into_iter().enumerate() {
        let slab = SlabTransport::new(thickness, 1.0, 0.3);
        let report = Parmonc::builder(1, 3)
            .max_sample_volume(200_000)
            .processors(4)
            .seqnum(i as u64)
            .output_dir(std::env::temp_dir().join(format!("parmonc-transport-{i}")))
            .run(slab)?;
        let s = &report.summary;
        println!(
            "{thickness:>10.1} {:>13.5} ±{:>7.5} {:>13.5} ±{:>7.5} {:>13.5} ±{:>7.5}",
            s.means[0], s.abs_errors[0], s.means[1], s.abs_errors[1], s.means[2], s.abs_errors[2],
        );
    }

    println!("\npurely absorbing slab vs Beer–Lambert e^(-sigma L):");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "thickness", "estimated", "exact", "covered?"
    );
    for (i, thickness) in [0.5, 1.0, 2.0].into_iter().enumerate() {
        let slab = SlabTransport::purely_absorbing(thickness, 1.0);
        let exact = slab.exact_transmission_pure_absorption();
        let report = Parmonc::builder(1, 3)
            .max_sample_volume(200_000)
            .processors(4)
            .seqnum(10 + i as u64)
            .output_dir(std::env::temp_dir().join(format!("parmonc-transport-abs-{i}")))
            .run(slab)?;
        let mean = report.summary.means[0];
        let eps = report.summary.abs_errors[0];
        println!(
            "{thickness:>10.1} {mean:>14.5} {exact:>14.5} {:>10}",
            (mean - exact).abs() <= eps
        );
    }
    Ok(())
}
