//! Statistical physics with PARMONC: scan the 2-D Ising model across
//! the phase transition, one PARMONC experiment per temperature.
//!
//! Each realization is an independent Metropolis chain (random start,
//! fixed sweeps); averaging independent chains gives honest error bars
//! on the energy and |magnetization| per site. The scan shows |m|
//! rising from ~0 to ~1 around the critical point
//! `beta_c = ln(1 + sqrt(2))/2 ≈ 0.4407`.
//!
//! ```text
//! cargo run --release --example ising_scan [-- --monitor]
//! ```
//!
//! With `--monitor`, every temperature point records an event trace
//! and the last point prints the run-monitor summary table.

use parmonc::prelude::{Parmonc, ParmoncError};
use parmonc_apps::IsingModel;

fn main() -> Result<(), ParmoncError> {
    let monitor = std::env::args().any(|a| a == "--monitor");
    let side = 16;
    let sweeps = 150;
    let chains = 200;
    println!(
        "2-D Ising {side}x{side} torus, {sweeps} Metropolis sweeps, {chains} chains per point"
    );
    println!("(beta_c ≈ {:.4})", IsingModel::BETA_CRITICAL);
    println!(
        "{:>7} {:>18} {:>18}",
        "beta", "E/site ± 3sigma", "|m| ± 3sigma"
    );
    for (i, beta) in [0.10, 0.25, 0.35, 0.42, 0.44, 0.47, 0.55, 0.70]
        .into_iter()
        .enumerate()
    {
        let model = IsingModel::new(side, beta, sweeps);
        let builder = Parmonc::builder(1, 2)
            .max_sample_volume(chains)
            .processors(4)
            .seqnum(i as u64)
            .output_dir(std::env::temp_dir().join(format!("parmonc-ising-{i}")));
        let builder = if monitor { builder.monitor() } else { builder };
        let report = builder.run(model)?;
        let s = &report.summary;
        println!(
            "{beta:>7.2} {:>10.4} ±{:>6.4} {:>10.4} ±{:>6.4}",
            s.means[0], s.abs_errors[0], s.means[1], s.abs_errors[1]
        );
        if i == 7 {
            if let Some(summary) = &report.monitor {
                println!();
                println!("{}", summary.render_table());
                println!(
                    "event trace in {}",
                    report.results_dir.run_metrics_path().display()
                );
            }
        }
    }
    println!("\n(|m| jumps across beta_c — the ferromagnetic phase transition;");
    println!(" near criticality the error bars swell: critical slowing-down.)");
    Ok(())
}
