//! Save-points, crash recovery and resumption — the operational story
//! of Sections 3.2 and 3.4 in one runnable script.
//!
//! 1. A first job runs with a wall-clock deadline (like a cluster job
//!    limit) and is cut off mid-simulation.
//! 2. `manaver` folds the per-worker subtotal files the dead job left
//!    behind into proper result files.
//! 3. A second job with `res = 1` (and a *fresh* `seqnum`, as the paper
//!    requires) resumes, automatically averaging the previous results.
//!
//! ```text
//! cargo run --release --example resume_manaver [-- --monitor]
//! ```
//!
//! With `--monitor`, both jobs also record an event trace and print
//! the run-monitor summary table.

use std::time::Duration;

use parmonc::prelude::{Parmonc, ParmoncError, RealizeFn, Resume};

fn slow_uniform() -> impl parmonc::Realize + Sync {
    RealizeFn::new(|rng, out| {
        std::thread::sleep(Duration::from_millis(2));
        out[0] = rng.next_f64();
    })
}

fn main() -> Result<(), ParmoncError> {
    let monitor = std::env::args().any(|a| a == "--monitor");
    let dir = std::env::temp_dir().join("parmonc-resume-demo");
    let _ = std::fs::remove_dir_all(&dir);

    // --- job 1: killed by its walltime -----------------------------
    let builder1 = Parmonc::builder(1, 1)
        .max_sample_volume(1_000_000) // "endless" like the paper's 10^9
        .processors(4)
        .seqnum(0)
        .deadline(Duration::from_millis(300))
        .output_dir(&dir);
    let builder1 = if monitor {
        builder1.monitor()
    } else {
        builder1
    };
    let report1 = builder1.run(slow_uniform())?;
    println!(
        "job 1 hit its walltime after {} of 1000000 realizations",
        report1.new_volume
    );

    // --- manaver: recover whatever the workers had ------------------
    // (The run above finished cleanly, so simulate the crash aftermath
    // by re-creating worker subtotal files from its checkpoint halves.)
    let rd = report1.results_dir.clone();
    let ckpt = rd.load_checkpoint()?.expect("job 1 saved a checkpoint");
    rd.save_worker_subtotal(
        0,
        &parmonc::messages::Subtotal {
            acc: ckpt.clone(),
            compute_seconds: 0.1,
        },
    )?;
    // Wipe baseline so manaver's total equals the worker files.
    rd.save_baseline(&parmonc::MatrixAccumulator::new(1, 1)?)?;
    let mreport = parmonc::manaver::manaver(&dir)?;
    println!(
        "manaver recovered {} realizations from {} worker file(s); mean = {:.6}",
        mreport.recovered_volume, mreport.workers_found, mreport.summary.means[0]
    );

    // --- job 2: res = 1, fresh seqnum -------------------------------
    let builder2 = Parmonc::builder(1, 1)
        .max_sample_volume(500)
        .processors(4)
        .seqnum(1) // must differ from job 1's seqnum
        .resume(Resume::Resume)
        .output_dir(&dir);
    let builder2 = if monitor {
        builder2.monitor()
    } else {
        builder2
    };
    let report2 = builder2.run(slow_uniform())?;
    println!(
        "job 2 resumed {} old + {} new = {} total realizations",
        report2.resumed_volume, report2.new_volume, report2.total_volume
    );
    println!(
        "final estimate of E[U(0,1)]: {:.6} ± {:.6} (exact 0.5)",
        report2.summary.means[0], report2.summary.abs_errors[0]
    );
    assert!((report2.summary.means[0] - 0.5).abs() <= report2.summary.abs_errors[0] + 0.05);
    if let Some(summary) = &report2.monitor {
        println!();
        println!("{}", summary.render_table());
        println!(
            "event trace in {} (metrics in {})",
            report2.results_dir.run_metrics_path().display(),
            report2.results_dir.metrics_prom_path().display()
        );
    }
    Ok(())
}
